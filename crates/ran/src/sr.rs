//! UE-side scheduling request (TS 38.321 §5.4.4).
//!
//! When uplink data arrives and the UE holds no grant, MAC triggers an SR —
//! step ② of the paper's Fig 2. The SR is a single bit on PUCCH, sent at
//! the next SR *opportunity*; the paper's §5 footnote notes that "any UE
//! can send SR (one bit) at any time during the UL slot", which corresponds
//! to a per-UL-slot opportunity configuration. The SR-to-grant handshake is
//! the protocol latency grant-free access eliminates (Fig 6a vs 6b).

use serde::{Deserialize, Serialize};
use sim::{Duration, Instant};

/// SR opportunity configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SrOpportunities {
    /// An SR can ride any uplink portion (the paper's model: 1 bit,
    /// anywhere in a UL slot).
    EveryUplinkSlot,
    /// Periodic PUCCH resources: every `period_slots` slots, at
    /// `offset_slots` (only valid if those slots have UL).
    Periodic {
        /// SR period in slots.
        period_slots: u64,
        /// Slot offset of the opportunity within the period.
        offset_slots: u64,
    },
}

/// SR procedure configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SrConfig {
    /// Where SR opportunities occur.
    pub opportunities: SrOpportunities,
    /// `sr-ProhibitTimer`: minimum spacing between SR transmissions while
    /// one is outstanding.
    pub prohibit: Duration,
    /// `sr-TransMax`: give up (and fall back to RACH in a real UE) after
    /// this many transmissions.
    pub max_transmissions: u32,
}

impl Default for SrConfig {
    fn default() -> Self {
        SrConfig {
            opportunities: SrOpportunities::EveryUplinkSlot,
            prohibit: Duration::from_millis(1),
            max_transmissions: 8,
        }
    }
}

/// The SR state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SrState {
    /// No SR pending.
    Idle,
    /// Data arrived; SR waiting for an opportunity.
    Pending {
        /// When the triggering data arrived.
        triggered_at: Instant,
    },
    /// SR transmitted; awaiting a grant (prohibit timer running).
    Sent {
        /// Time of the last SR transmission.
        last_tx: Instant,
        /// Transmissions so far.
        count: u32,
    },
    /// `sr-TransMax` exceeded: a real UE would start random access.
    Failed,
}

/// The UE's SR procedure.
#[derive(Debug, Clone)]
pub struct SrProcedure {
    config: SrConfig,
    state: SrState,
}

impl SrProcedure {
    /// Creates the procedure in the idle state.
    pub fn new(config: SrConfig) -> SrProcedure {
        SrProcedure { config, state: SrState::Idle }
    }

    /// Current state.
    pub fn state(&self) -> SrState {
        self.state
    }

    /// The configuration.
    pub fn config(&self) -> &SrConfig {
        &self.config
    }

    /// New UL data with no grant available: trigger an SR (no-op if one is
    /// already in flight).
    pub fn trigger(&mut self, now: Instant) {
        if matches!(self.state, SrState::Idle) {
            self.state = SrState::Pending { triggered_at: now };
        }
    }

    /// Asks whether an SR should be transmitted at the UL opportunity
    /// starting at `opportunity` in global slot `slot`. Advances the state
    /// machine when the answer is yes.
    pub fn maybe_transmit(&mut self, slot: u64, opportunity: Instant) -> bool {
        if !self.opportunity_valid(slot) {
            return false;
        }
        match self.state {
            SrState::Pending { .. } => {
                self.state = SrState::Sent { last_tx: opportunity, count: 1 };
                true
            }
            SrState::Sent { last_tx, count } => {
                if opportunity
                    .checked_duration_since(last_tx)
                    .is_some_and(|d| d >= self.config.prohibit)
                {
                    if count >= self.config.max_transmissions {
                        self.state = SrState::Failed;
                        false
                    } else {
                        self.state = SrState::Sent { last_tx: opportunity, count: count + 1 };
                        true
                    }
                } else {
                    false
                }
            }
            SrState::Idle | SrState::Failed => false,
        }
    }

    fn opportunity_valid(&self, slot: u64) -> bool {
        match self.config.opportunities {
            SrOpportunities::EveryUplinkSlot => true,
            SrOpportunities::Periodic { period_slots, offset_slots } => {
                slot % period_slots == offset_slots % period_slots
            }
        }
    }

    /// A grant arrived: the SR is satisfied.
    pub fn on_grant(&mut self) {
        self.state = SrState::Idle;
    }

    /// Whether the procedure has exhausted `sr-TransMax` and must fall
    /// back to random access (TS 38.321 §5.4.4: "initiate a Random Access
    /// procedure ... and cancel all pending SRs").
    pub fn needs_rach(&self) -> bool {
        matches!(self.state, SrState::Failed)
    }

    /// Random access completed (Msg4 resolved): the UE holds uplink
    /// access again and the procedure returns to idle, ready for new
    /// triggers. No-op unless the procedure had failed.
    pub fn on_rach_complete(&mut self) {
        if self.needs_rach() {
            self.state = SrState::Idle;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_until_triggered() {
        let mut sr = SrProcedure::new(SrConfig::default());
        assert!(!sr.maybe_transmit(0, Instant::ZERO));
        sr.trigger(Instant::from_micros(10));
        assert_eq!(sr.state(), SrState::Pending { triggered_at: Instant::from_micros(10) });
        assert!(sr.maybe_transmit(1, Instant::from_micros(250)));
        assert!(matches!(sr.state(), SrState::Sent { count: 1, .. }));
    }

    #[test]
    fn grant_resolves() {
        let mut sr = SrProcedure::new(SrConfig::default());
        sr.trigger(Instant::ZERO);
        assert!(sr.maybe_transmit(0, Instant::ZERO));
        sr.on_grant();
        assert_eq!(sr.state(), SrState::Idle);
        // Re-triggerable afterwards.
        sr.trigger(Instant::from_micros(5));
        assert!(matches!(sr.state(), SrState::Pending { .. }));
    }

    #[test]
    fn prohibit_timer_spaces_retransmissions() {
        let cfg = SrConfig { prohibit: Duration::from_millis(2), ..SrConfig::default() };
        let mut sr = SrProcedure::new(cfg);
        sr.trigger(Instant::ZERO);
        assert!(sr.maybe_transmit(0, Instant::ZERO));
        // Too soon.
        assert!(!sr.maybe_transmit(1, Instant::from_millis(1)));
        // Exactly at the prohibit boundary: allowed.
        assert!(sr.maybe_transmit(4, Instant::from_millis(2)));
        assert!(matches!(sr.state(), SrState::Sent { count: 2, .. }));
    }

    #[test]
    fn trans_max_fails_the_procedure() {
        let cfg = SrConfig {
            prohibit: Duration::from_micros(1),
            max_transmissions: 2,
            ..SrConfig::default()
        };
        let mut sr = SrProcedure::new(cfg);
        sr.trigger(Instant::ZERO);
        assert!(sr.maybe_transmit(0, Instant::ZERO));
        assert!(sr.maybe_transmit(1, Instant::from_micros(10)));
        // Third attempt exceeds sr-TransMax.
        assert!(!sr.maybe_transmit(2, Instant::from_micros(20)));
        assert_eq!(sr.state(), SrState::Failed);
    }

    #[test]
    fn periodic_opportunities_filter_slots() {
        let cfg = SrConfig {
            opportunities: SrOpportunities::Periodic { period_slots: 4, offset_slots: 3 },
            ..SrConfig::default()
        };
        let mut sr = SrProcedure::new(cfg);
        sr.trigger(Instant::ZERO);
        assert!(!sr.maybe_transmit(0, Instant::ZERO));
        assert!(!sr.maybe_transmit(2, Instant::from_micros(500)));
        assert!(sr.maybe_transmit(3, Instant::from_micros(750)));
        assert!(matches!(sr.state(), SrState::Sent { .. }));
    }

    #[test]
    fn post_exhaustion_rach_fallback_reacquires_uplink_access() {
        let cfg = SrConfig {
            prohibit: Duration::from_micros(1),
            max_transmissions: 2,
            ..SrConfig::default()
        };
        let mut sr = SrProcedure::new(cfg);
        sr.trigger(Instant::ZERO);
        assert!(sr.maybe_transmit(0, Instant::ZERO));
        assert!(sr.maybe_transmit(1, Instant::from_micros(10)));
        assert!(!sr.maybe_transmit(2, Instant::from_micros(20)));
        assert!(sr.needs_rach(), "exhaustion must demand random access");
        // While failed, the procedure neither transmits nor re-triggers.
        sr.trigger(Instant::from_micros(30));
        assert!(!sr.maybe_transmit(3, Instant::from_micros(30)));
        assert_eq!(sr.state(), SrState::Failed);
        // RACH resolves: the UE re-acquires uplink access and the SR
        // machinery works again end to end.
        let rach = crate::rach::RachConfig::default();
        let recovery = crate::rach::recovery_latency(
            &rach,
            Instant::from_micros(30),
            1,
            &mut sim::SimRng::from_seed(0).stream("rach"),
        )
        .expect("uncontended RACH always completes");
        assert!(recovery >= Duration::from_millis(6), "recovery {recovery}");
        sr.on_rach_complete();
        assert_eq!(sr.state(), SrState::Idle);
        sr.trigger(Instant::from_millis(40));
        assert!(sr.maybe_transmit(100, Instant::from_millis(40)));
        assert!(matches!(sr.state(), SrState::Sent { count: 1, .. }));
    }

    #[test]
    fn on_rach_complete_is_a_noop_unless_failed() {
        let mut sr = SrProcedure::new(SrConfig::default());
        sr.trigger(Instant::ZERO);
        sr.on_rach_complete();
        assert!(matches!(sr.state(), SrState::Pending { .. }));
    }

    #[test]
    fn double_trigger_is_idempotent() {
        let mut sr = SrProcedure::new(SrConfig::default());
        sr.trigger(Instant::from_micros(1));
        sr.trigger(Instant::from_micros(2));
        assert_eq!(sr.state(), SrState::Pending { triggered_at: Instant::from_micros(1) });
    }
}
