//! Random access (RACH) — the four-step procedure of TS 38.321 §5.1.
//!
//! When a UE has no grant and its SR budget is exhausted (`sr-TransMax`,
//! see [`crate::sr`]), it falls back to contention-based random access:
//!
//! 1. **Msg1** — a Zadoff–Chu preamble (see `urllc-phy`'s `prach`) picked
//!    uniformly from the pool, on the next PRACH occasion;
//! 2. **Msg2** — the random-access response with an UL grant;
//! 3. **Msg3** — the identified request on that grant;
//! 4. **Msg4** — contention resolution: if two UEs picked the same
//!    preamble on the same occasion, both reach Msg3 and only now learn of
//!    the collision; losers back off and retry.
//!
//! RACH is the latency cliff under the paper's §9 scalability question:
//! every step waits for its own opportunity, and collisions multiply the
//! whole procedure. The Monte-Carlo contention model here quantifies how
//! fast that cliff approaches as the population grows.

use rand::RngCore;
use serde::{Deserialize, Serialize};
use sim::{Dist, Duration, Instant, LatencyRecorder, SimRng};

/// RACH configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RachConfig {
    /// Spacing of PRACH occasions (typically 10 ms frames, denser for
    /// low-latency configurations).
    pub occasion_period: Duration,
    /// Number of contention preambles per occasion.
    pub preambles: usize,
    /// Msg1 end → Msg2 (RAR) reception.
    pub response_delay: Duration,
    /// Msg2 → Msg3 transmission (UE processing + granted slot).
    pub msg3_delay: Duration,
    /// Msg3 → Msg4 contention resolution.
    pub msg4_delay: Duration,
    /// Maximum backoff drawn by a collision loser before re-attempting.
    pub max_backoff: Duration,
    /// Give up after this many attempts.
    pub max_attempts: u32,
}

impl Default for RachConfig {
    fn default() -> Self {
        RachConfig {
            occasion_period: Duration::from_millis(10),
            preambles: 64,
            response_delay: Duration::from_millis(2),
            msg3_delay: Duration::from_millis(2),
            msg4_delay: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
            max_attempts: 8,
        }
    }
}

impl RachConfig {
    /// Latency of one collision-free procedure starting from `trigger`:
    /// wait for the occasion, then the three response steps.
    pub fn uncontended_latency(&self, trigger: Instant) -> Duration {
        let occasion = trigger.ceil_to(self.occasion_period);
        (occasion - trigger) + self.response_delay + self.msg3_delay + self.msg4_delay
    }

    /// Worst-case collision-free latency (trigger just after an occasion).
    pub fn uncontended_worst_case(&self) -> Duration {
        self.occasion_period + self.response_delay + self.msg3_delay + self.msg4_delay
    }

    /// Worst case over the whole attempt budget: every attempt but the
    /// last collides, each loser waits a full occasion period, learns of
    /// the collision only at Msg4, and draws the maximum backoff. Upper
    /// bound on every latency [`recovery_latency`] can return.
    pub fn contended_worst_case(&self) -> Duration {
        let steps = self.response_delay + self.msg3_delay + self.msg4_delay;
        let attempts = u64::from(self.max_attempts.max(1));
        (self.occasion_period + steps) * attempts + self.max_backoff * (attempts - 1)
    }
}

/// Latency of one UE's contention-based random access starting at
/// `trigger`, with `contending` UEs active on each occasion (itself
/// included). Used as the SR-exhaustion recovery path: per attempt the
/// collision probability is the birthday bound
/// `1 − (1 − 1/preambles)^(contending − 1)`; a collision is detected at
/// Msg4, the loser backs off uniformly and retries on the next reachable
/// occasion. Returns `None` when `max_attempts` is exhausted.
///
/// With `contending == 1` the collision probability is zero, no RNG draw
/// is consumed, and the result is fully deterministic (the uncontended
/// four-step latency).
pub fn recovery_latency(
    config: &RachConfig,
    trigger: Instant,
    contending: u32,
    rng: &mut SimRng,
) -> Option<Duration> {
    let p_collide = if contending <= 1 {
        0.0
    } else {
        1.0 - (1.0 - 1.0 / config.preambles as f64).powi(contending as i32 - 1)
    };
    let steps = config.response_delay + config.msg3_delay + config.msg4_delay;
    let mut ready = trigger;
    for _ in 0..config.max_attempts {
        let occasion = ready.ceil_to(config.occasion_period);
        if !rng.chance(p_collide) {
            return Some((occasion - trigger) + steps);
        }
        // Collision: the loss is only learned at Msg4; back off from there.
        // Saturating: repeated backoffs under a pathological occasion
        // period must exhaust the attempt budget, not abort the sweep.
        let backoff = Dist::Uniform { lo: Duration::ZERO, hi: config.max_backoff }.sample(rng);
        ready = occasion.saturating_add(steps).saturating_add(backoff);
    }
    None
}

/// Result of a contention simulation.
#[derive(Debug, Clone, Serialize)]
pub struct ContentionStats {
    /// UEs that completed random access within the attempt budget.
    pub succeeded: u64,
    /// UEs that exhausted their attempts.
    pub failed: u64,
    /// Completion latency of the successful UEs.
    pub latency: LatencyRecorder,
    /// Mean attempts per successful UE.
    pub mean_attempts: f64,
    /// Fraction of Msg1 transmissions that collided.
    pub collision_rate: f64,
}

/// Simulates `n_ues` triggering random access within one `occasion_period`
/// (the worst burst: e.g. a cell-wide event wakes every sensor at once).
pub fn simulate_contention(config: &RachConfig, n_ues: usize, seed: u64) -> ContentionStats {
    let master = SimRng::from_seed(seed);
    let mut rng = master.stream("rach");
    // Each UE triggers at a random instant within one occasion period.
    let trigger_dist = Dist::Uniform { lo: Duration::ZERO, hi: config.occasion_period };
    #[derive(Clone)]
    struct Ue {
        trigger: Instant,
        next_attempt: Instant,
        attempts: u32,
        done: Option<Instant>,
    }
    let mut ues: Vec<Ue> = (0..n_ues)
        .map(|_| {
            let t = Instant::ZERO + trigger_dist.sample(&mut rng);
            Ue { trigger: t, next_attempt: t, attempts: 0, done: None }
        })
        .collect();

    let mut msg1_total = 0u64;
    let mut msg1_collided = 0u64;
    let horizon = config.occasion_period * (4 * u64::from(config.max_attempts) + 8);
    let mut occasion = Instant::ZERO + config.occasion_period;
    while occasion <= Instant::ZERO + horizon {
        // Who transmits a preamble on this occasion?
        let mut picks: Vec<(usize, usize)> = Vec::new(); // (ue, preamble)
        for (i, ue) in ues.iter_mut().enumerate() {
            if ue.done.is_none() && ue.next_attempt <= occasion && ue.attempts < config.max_attempts
            {
                ue.attempts += 1;
                let p = (rng.next_u64() % config.preambles as u64) as usize;
                picks.push((i, p));
            }
        }
        msg1_total += picks.len() as u64;
        // Preambles picked by exactly one UE succeed; shared ones collide
        // (detected only at Msg4).
        let mut counts = vec![0u32; config.preambles];
        for &(_, p) in &picks {
            counts[p] += 1;
        }
        for (i, p) in picks {
            if counts[p] == 1 {
                ues[i].done =
                    Some(occasion + config.response_delay + config.msg3_delay + config.msg4_delay);
            } else {
                msg1_collided += 1;
                // Loser learns at Msg4 and backs off.
                let backoff =
                    Dist::Uniform { lo: Duration::ZERO, hi: config.max_backoff }.sample(&mut rng);
                ues[i].next_attempt = occasion
                    .saturating_add(config.response_delay)
                    .saturating_add(config.msg3_delay)
                    .saturating_add(config.msg4_delay)
                    .saturating_add(backoff);
            }
        }
        occasion += config.occasion_period;
    }

    let mut latency = LatencyRecorder::new();
    let mut attempts_sum = 0u64;
    let mut succeeded = 0u64;
    for ue in &ues {
        if let Some(done) = ue.done {
            latency.record(done - ue.trigger);
            attempts_sum += u64::from(ue.attempts);
            succeeded += 1;
        }
    }
    ContentionStats {
        succeeded,
        failed: n_ues as u64 - succeeded,
        latency,
        mean_attempts: if succeeded == 0 { 0.0 } else { attempts_sum as f64 / succeeded as f64 },
        collision_rate: if msg1_total == 0 {
            0.0
        } else {
            msg1_collided as f64 / msg1_total as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_latency_bounds() {
        let c = RachConfig::default();
        // Trigger exactly on an occasion: only the three response steps.
        let best = c.uncontended_latency(Instant::from_millis(10));
        assert_eq!(best, Duration::from_millis(6));
        // Just after: nearly a full occasion period extra.
        let worst = c.uncontended_latency(Instant::from_millis(10) + Duration::from_nanos(1));
        assert!(worst > Duration::from_millis(15));
        assert!(worst <= c.uncontended_worst_case());
    }

    #[test]
    fn recovery_latency_uncontended_is_deterministic() {
        let c = RachConfig::default();
        let mut rng = SimRng::from_seed(1);
        let trigger = Instant::from_millis(3);
        let lat = recovery_latency(&c, trigger, 1, &mut rng).expect("always succeeds");
        assert_eq!(lat, c.uncontended_latency(trigger));
        // No draws were consumed: the next draw matches a fresh stream.
        assert_eq!(rng.next_u64(), SimRng::from_seed(1).next_u64());
    }

    #[test]
    fn contended_worst_case_bounds_every_recovery_latency() {
        let c = RachConfig::default();
        let bound = c.contended_worst_case();
        assert!(bound >= c.uncontended_worst_case());
        let mut rng = SimRng::from_seed(17).stream("bound");
        for i in 0..5_000u64 {
            let trigger = Instant::from_micros(i * 137);
            if let Some(lat) = recovery_latency(&c, trigger, 64, &mut rng) {
                assert!(lat <= bound, "latency {lat} exceeds worst case {bound}");
            }
        }
    }

    #[test]
    fn recovery_latency_grows_with_contention() {
        let c = RachConfig::default();
        let mean = |contending: u32, seed: u64| {
            let mut rng = SimRng::from_seed(seed).stream("recovery");
            let mut sum = Duration::ZERO;
            let mut ok = 0u32;
            for _ in 0..2_000 {
                if let Some(l) = recovery_latency(&c, Instant::from_millis(1), contending, &mut rng)
                {
                    sum += l;
                    ok += 1;
                }
            }
            (sum.as_micros_f64() / f64::from(ok.max(1)), ok)
        };
        let (lone, ok1) = mean(1, 2);
        let (crowded, ok2) = mean(200, 2);
        assert_eq!(ok1, 2_000);
        assert!(ok2 > 0);
        assert!(crowded > lone, "crowded {crowded} vs lone {lone}");
    }

    #[test]
    fn recovery_latency_exhausts_under_certain_collision() {
        // preambles = 1 with 2 contenders: every attempt collides.
        let c = RachConfig { preambles: 1, max_attempts: 3, ..RachConfig::default() };
        let mut rng = SimRng::from_seed(3);
        assert_eq!(recovery_latency(&c, Instant::ZERO, 2, &mut rng), None);
    }

    #[test]
    fn single_ue_always_succeeds_first_attempt() {
        let s = simulate_contention(&RachConfig::default(), 1, 1);
        assert_eq!(s.succeeded, 1);
        assert_eq!(s.failed, 0);
        assert_eq!(s.mean_attempts, 1.0);
        assert_eq!(s.collision_rate, 0.0);
    }

    #[test]
    fn collision_rate_tracks_birthday_bound() {
        // With n UEs on one occasion and P preambles, the expected fraction
        // of colliding transmissions is 1 − (1 − 1/P)^(n−1).
        let cfg = RachConfig::default();
        let n = 16usize;
        // Average over seeds for a stable estimate of the FIRST occasion's
        // collision rate; later retry occasions are sparser, so use the
        // analytic bound only as an order-of-magnitude check.
        let mut total_rate = 0.0;
        for seed in 0..20 {
            total_rate += simulate_contention(&cfg, n, seed).collision_rate;
        }
        let observed = total_rate / 20.0;
        let expected = 1.0 - (1.0 - 1.0 / cfg.preambles as f64).powi(n as i32 - 1);
        assert!(
            observed > expected * 0.3 && observed < expected * 3.0,
            "observed {observed:.3} vs first-occasion bound {expected:.3}"
        );
    }

    #[test]
    fn contention_grows_with_population() {
        let cfg = RachConfig::default();
        let small = simulate_contention(&cfg, 4, 2);
        let large = simulate_contention(&cfg, 256, 2);
        assert!(large.collision_rate > small.collision_rate);
        assert!(large.mean_attempts > small.mean_attempts);
        let (mut ls, mut ss) = (large.latency.clone(), small.latency.clone());
        assert!(ls.summary().mean_us > ss.summary().mean_us);
    }

    #[test]
    fn overload_causes_failures() {
        // 4096 UEs on 64 preambles: some must exhaust their budget.
        let cfg = RachConfig { max_attempts: 3, ..RachConfig::default() };
        let s = simulate_contention(&cfg, 4096, 3);
        assert!(s.failed > 0, "expected RACH failures under overload");
        assert!(s.succeeded > 0, "but not a total outage");
    }

    #[test]
    fn rach_latency_dwarfs_the_urllc_budget() {
        // Even the collision-free best case (≥ response+msg3+msg4 = 6 ms
        // here) is an order of magnitude past 0.5 ms: why SR failure is a
        // latency cliff.
        let c = RachConfig::default();
        assert!(c.uncontended_latency(Instant::from_millis(10)) > Duration::from_millis(5));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = simulate_contention(&RachConfig::default(), 64, 7);
        let b = simulate_contention(&RachConfig::default(), 64, 7);
        assert_eq!(a.succeeded, b.succeeded);
        assert_eq!(a.collision_rate, b.collision_rate);
    }

    #[test]
    fn rng_pick_distribution_is_uniformish() {
        // Sanity on the preamble picker itself.
        let mut rng = SimRng::from_seed(5);
        let mut counts = [0u32; 64];
        for _ in 0..64_000 {
            counts[(rng.next_u64() % 64) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "count {c}");
        }
    }
}
