//! PDCP — Packet Data Convergence Protocol (TS 38.323).
//!
//! PDCP numbers every SDU with a COUNT (hyper-frame number ‖ sequence
//! number), ciphers the payload, and restores order on the receive side.
//! In the paper's journey it is the "encryption" stop of Fig 2 and the
//! second row of Table 2.
//!
//! The cipher is an XOR keystream generated from a Gold sequence seeded by
//! `(key, COUNT, bearer, direction)` — structurally identical to how NEA1
//! consumes its inputs, but *not* a secure algorithm; it stands in for the
//! AES/SNOW kernels whose latency (sub-µs for ping-sized packets) is folded
//! into the PDCP row of the Table 2 timing model. DESIGN.md records this
//! substitution.

use bytes::Bytes;
use phy::scrambling::GoldSequence;
use serde::{Deserialize, Serialize};
use sim::{Duration, Instant};
use std::collections::{BTreeMap, VecDeque};
use telemetry::Telemetry;

/// PDCP sequence-number length in bits (this implementation fixes the
/// 12-bit DRB variant; 18-bit exists in the spec for high-rate bearers).
pub const SN_BITS: u32 = 12;

/// Sequence numbers per HFN increment.
pub const SN_MODULUS: u32 = 1 << SN_BITS;

/// Half the SN space — the reordering window.
pub const WINDOW: u32 = SN_MODULUS / 2;

/// Link direction, an input to the cipher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// UE → gNB.
    Uplink,
    /// gNB → UE.
    Downlink,
}

/// Static PDCP entity configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PdcpConfig {
    /// Ciphering key (128-bit keys in the real system; 64 bits suffice for
    /// the stand-in keystream).
    pub key: u64,
    /// Bearer identity (cipher input).
    pub bearer: u8,
    /// Direction this entity transmits in.
    pub direction: Direction,
}

impl PdcpConfig {
    /// A test/default configuration.
    pub fn new(key: u64, bearer: u8, direction: Direction) -> PdcpConfig {
        PdcpConfig { key, bearer, direction }
    }
}

/// Errors from PDCP receive processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PdcpError {
    /// PDU shorter than the 2-byte header.
    Truncated,
    /// Control-PDU bit set (not carried on this data path).
    NotDataPdu,
}

impl core::fmt::Display for PdcpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PdcpError::Truncated => write!(f, "PDCP PDU shorter than its header"),
            PdcpError::NotDataPdu => write!(f, "not a PDCP data PDU"),
        }
    }
}

impl std::error::Error for PdcpError {}

/// A PDCP status report (TS 38.323 §6.2.3.1): the receiver's first missing
/// COUNT plus a bitmap of what it holds beyond that. Exchanged after RLC
/// re-establishment so the transmitter retransmits exactly the SDUs that
/// were in flight — SN continuity instead of data loss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdcpStatusReport {
    /// First missing COUNT (the receiver's delivery edge).
    pub fmc: u32,
    /// COUNTs above `fmc` already held in the reordering buffer.
    pub received: Vec<u32>,
}

impl PdcpStatusReport {
    /// Encodes as a control PDU: D/C=0, PDU type 0, 4-byte FMC, then a
    /// bitmap where bit `7-j` of byte `i` marks COUNT `fmc + 1 + 8i + j`
    /// as received.
    pub fn encode(&self) -> Bytes {
        // The bitmap is written straight into the output buffer — no
        // intermediate Vec to allocate and re-copy.
        const HDR: usize = 5; // D/C+type byte, 4-byte FMC
        let mut out = vec![0x00];
        out.extend_from_slice(&self.fmc.to_be_bytes());
        for &c in &self.received {
            debug_assert!(c > self.fmc);
            let off = (c - self.fmc - 1) as usize;
            let byte = HDR + off / 8;
            if out.len() <= byte {
                out.resize(byte + 1, 0);
            }
            out[byte] |= 0x80 >> (off % 8);
        }
        Bytes::from(out)
    }

    /// Decodes a control PDU produced by [`encode`](Self::encode).
    pub fn decode(pdu: &Bytes) -> Result<PdcpStatusReport, PdcpError> {
        if pdu.len() < 5 {
            return Err(PdcpError::Truncated);
        }
        if pdu[0] & 0x80 != 0 {
            return Err(PdcpError::NotDataPdu);
        }
        let fmc = u32::from_be_bytes([pdu[1], pdu[2], pdu[3], pdu[4]]);
        let mut received = Vec::new();
        for (i, &b) in pdu[5..].iter().enumerate() {
            for j in 0..8u32 {
                if b & (0x80 >> j) != 0 {
                    received.push(fmc + 1 + (i as u32) * 8 + j);
                }
            }
        }
        Ok(PdcpStatusReport { fmc, received })
    }
}

fn keystream_cinit(cfg: &PdcpConfig, count: u32, rx: bool) -> u32 {
    // Direction of the *data*: the receiver must derive the same stream the
    // transmitter used.
    let dir = match (cfg.direction, rx) {
        (Direction::Uplink, false) | (Direction::Downlink, true) => 1u64,
        _ => 0u64,
    };
    let mut h = cfg.key ^ u64::from(count).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= (u64::from(cfg.bearer) << 33) | (dir << 32);
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 32;
    (h as u32) & 0x7FFF_FFFF
}

fn cipher(cfg: &PdcpConfig, count: u32, rx: bool, data: &mut [u8]) {
    GoldSequence::new(keystream_cinit(cfg, count, rx)).scramble_in_place(data);
}

/// A PDCP entity: transmit numbering/ciphering plus receive
/// deciphering/reordering.
#[derive(Debug, Clone)]
pub struct PdcpEntity {
    config: PdcpConfig,
    /// COUNT of the next SDU to transmit.
    tx_next: u32,
    /// COUNT of the next SDU expected to be delivered in order.
    rx_deliv: u32,
    /// COUNT after the highest received.
    rx_next: u32,
    /// Out-of-order buffer, keyed by COUNT.
    reorder: BTreeMap<u32, Bytes>,
    /// Received-then-discarded (duplicate / stale) counter.
    discarded: u64,
    /// Transmitted SDUs not yet confirmed delivered, keyed by COUNT — the
    /// retransmission buffer that makes status-report recovery possible.
    tx_pending: BTreeMap<u32, Bytes>,
    /// SDUs retransmitted through status-report recovery.
    retransmitted: u64,
    /// discardTimer (TS 38.323 §5.5): SDUs older than this are dropped
    /// from the transmission queue before ever reaching RLC. `None`
    /// disables expiry (the spec's `infinity` value).
    discard_timer: Option<Duration>,
    /// Transmission queue for the timed path: SDUs awaiting a lower-layer
    /// pull, each carrying the COUNT assigned at enqueue and its expiry
    /// deadline. COUNT-at-enqueue means a discarded SDU leaves an SN gap
    /// on the wire, exactly as the spec's receiver sees it.
    tx_queue: VecDeque<(u32, Option<Instant>, Bytes)>,
    /// SDUs dropped by discardTimer expiry.
    discard_expired: u64,
    tel: Telemetry,
}

impl PdcpEntity {
    /// Creates a fresh entity (all state zero).
    pub fn new(config: PdcpConfig) -> PdcpEntity {
        PdcpEntity {
            config,
            tx_next: 0,
            rx_deliv: 0,
            rx_next: 0,
            reorder: BTreeMap::new(),
            discarded: 0,
            tx_pending: BTreeMap::new(),
            retransmitted: 0,
            discard_timer: None,
            tx_queue: VecDeque::new(),
            discard_expired: 0,
            tel: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle (PDU counters under `pdcp/*`).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// The entity configuration.
    pub fn config(&self) -> &PdcpConfig {
        &self.config
    }

    /// COUNT the next transmitted SDU will carry.
    pub fn tx_next_count(&self) -> u32 {
        self.tx_next
    }

    /// Number of PDUs discarded as duplicates or stale.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Number of PDUs waiting in the reordering buffer.
    pub fn buffered(&self) -> usize {
        self.reorder.len()
    }

    /// Builds a PDCP data PDU: 2-byte header (D/C=1, R,R,R, SN\[11:8\] ‖
    /// SN\[7:0\]) followed by the ciphered SDU. The SDU is retained in the
    /// retransmission buffer until [`confirm_up_to`](Self::confirm_up_to)
    /// or a status report releases it.
    pub fn tx_encode(&mut self, sdu: &Bytes) -> Bytes {
        let count = self.tx_next;
        self.tx_next = self.tx_next.wrapping_add(1);
        self.tx_pending.insert(count, sdu.clone());
        self.tel.count("pdcp", "tx_pdus", 1);
        self.encode_with_count(count, sdu)
    }

    fn encode_with_count(&self, count: u32, sdu: &Bytes) -> Bytes {
        let sn = count % SN_MODULUS;
        let mut out = Vec::with_capacity(2 + sdu.len());
        out.push(0x80 | ((sn >> 8) as u8 & 0x0F));
        out.push(sn as u8);
        let body_start = out.len();
        out.extend_from_slice(sdu);
        cipher(&self.config, count, false, &mut out[body_start..]);
        Bytes::from(out)
    }

    /// Sets the COUNT the next transmitted SDU will carry — the receiving
    /// side of an Xn SN STATUS TRANSFER (TS 38.423 §9.1.1.4): the target
    /// gNB resumes downlink numbering exactly where the source stopped, so
    /// forwarded PDUs (original COUNTs) and fresh ones stay contiguous.
    /// Only meaningful on a freshly created entity taking over a bearer.
    pub fn set_tx_next(&mut self, count: u32) {
        self.tx_next = count;
    }

    /// SDUs still awaiting delivery confirmation.
    pub fn tx_pending(&self) -> usize {
        self.tx_pending.len()
    }

    /// SDUs retransmitted via status-report recovery so far.
    pub fn retransmitted(&self) -> u64 {
        self.retransmitted
    }

    /// Confirms in-order delivery of every SDU with COUNT < `count`,
    /// releasing them from the retransmission buffer (lower layers ack
    /// continuously in steady state; this keeps the buffer bounded).
    pub fn confirm_up_to(&mut self, count: u32) {
        self.tx_pending.retain(|&c, _| c >= count);
    }

    /// Receive side: compiles the status report the peer needs to resume
    /// transmission after re-establishment.
    pub fn status_report(&self) -> PdcpStatusReport {
        PdcpStatusReport { fmc: self.rx_deliv, received: self.reorder.keys().copied().collect() }
    }

    /// Transmit side of PDCP data recovery (TS 38.323 §5.4): applies the
    /// peer's status report — dropping everything it confirms — and
    /// re-encodes the still-unconfirmed SDUs with their **original**
    /// COUNTs, preserving SN continuity across the re-established link.
    pub fn retransmit_unconfirmed(&mut self, report: &PdcpStatusReport) -> Vec<Bytes> {
        self.confirm_up_to(report.fmc);
        for c in &report.received {
            self.tx_pending.remove(c);
        }
        let pdus: Vec<Bytes> = self
            .tx_pending
            .iter()
            .map(|(&count, sdu)| self.encode_with_count(count, sdu))
            .collect();
        self.retransmitted += pdus.len() as u64;
        self.tel.count("pdcp", "retx_pdus", pdus.len() as u64);
        pdus
    }

    /// Processes a received data PDU. Returns the SDUs now deliverable in
    /// order (possibly empty while a gap is outstanding).
    pub fn rx_decode(&mut self, pdu: &Bytes) -> Result<Vec<Bytes>, PdcpError> {
        if pdu.len() < 2 {
            return Err(PdcpError::Truncated);
        }
        if pdu[0] & 0x80 == 0 {
            return Err(PdcpError::NotDataPdu);
        }
        let sn = (u32::from(pdu[0] & 0x0F) << 8) | u32::from(pdu[1]);
        self.tel.count("pdcp", "rx_pdus", 1);
        let count = self.infer_count(sn);
        if count < self.rx_deliv || self.reorder.contains_key(&count) {
            self.discarded += 1;
            return Ok(Vec::new());
        }
        // Copy straight out of the shared buffer — `slice(2..)` would clone
        // the Arc only to be copied out of again.
        let mut body = pdu[2..].to_vec();
        cipher(&self.config, count, true, &mut body);
        self.reorder.insert(count, Bytes::from(body));
        if count >= self.rx_next {
            self.rx_next = count + 1;
        }
        Ok(self.deliver_in_order())
    }

    /// TS 38.323 §5.2.2 COUNT inference from a received SN, relative to the
    /// delivery edge.
    fn infer_count(&self, rcvd_sn: u32) -> u32 {
        let deliv_sn = self.rx_deliv % SN_MODULUS;
        let deliv_hfn = self.rx_deliv / SN_MODULUS;
        let hfn = if rcvd_sn + WINDOW < deliv_sn {
            deliv_hfn + 1
        } else if rcvd_sn >= deliv_sn + WINDOW {
            deliv_hfn.saturating_sub(1)
        } else {
            deliv_hfn
        };
        hfn * SN_MODULUS + rcvd_sn
    }

    fn deliver_in_order(&mut self) -> Vec<Bytes> {
        let mut out = Vec::new();
        while let Some(sdu) = self.reorder.remove(&self.rx_deliv) {
            out.push(sdu);
            self.rx_deliv += 1;
        }
        out
    }

    /// Configures the discardTimer for the timed transmission path
    /// ([`tx_enqueue`](Self::tx_enqueue) / [`pull_tx`](Self::pull_tx)).
    /// `None` means SDUs never expire.
    pub fn set_discard_timer(&mut self, timer: Option<Duration>) {
        self.discard_timer = timer;
    }

    /// Enqueues an SDU on the timed transmission path, assigning its COUNT
    /// immediately (TS 38.323 associates the COUNT at SDU reception, so a
    /// later discard leaves an SN gap). The PDU itself is built when a
    /// lower-layer grant pulls it via [`pull_tx`](Self::pull_tx). Returns
    /// the assigned COUNT.
    pub fn tx_enqueue(&mut self, now: Instant, sdu: Bytes) -> u32 {
        let count = self.tx_next;
        self.tx_next = self.tx_next.wrapping_add(1);
        let deadline = self.discard_timer.map(|t| now + t);
        self.tx_queue.push_back((count, deadline, sdu));
        count
    }

    /// Drops every queued SDU whose discardTimer has expired at `now`.
    /// Returns how many were dropped. Because COUNTs were assigned at
    /// enqueue, each drop is a permanent SN gap; the receiver recovers via
    /// its reordering flush. Memory stays bounded as a corollary: no SDU
    /// dwells in the queue longer than the timer.
    pub fn expire_discards(&mut self, now: Instant) -> u64 {
        let before = self.tx_queue.len();
        self.tx_queue.retain(|(_, deadline, _)| match deadline {
            Some(d) => *d > now,
            None => true,
        });
        let dropped = (before - self.tx_queue.len()) as u64;
        self.discard_expired += dropped;
        self.tel.count("pdcp", "discard_expired", dropped);
        dropped
    }

    /// Pulls the next queued SDU as a data PDU (after expiring stale heads
    /// at `now`), moving it to the retransmission buffer. Returns the
    /// assigned COUNT alongside the PDU, or `None` when the queue is empty.
    pub fn pull_tx(&mut self, now: Instant) -> Option<(u32, Bytes)> {
        self.expire_discards(now);
        let (count, _, sdu) = self.tx_queue.pop_front()?;
        self.tx_pending.insert(count, sdu.clone());
        self.tel.count("pdcp", "tx_pdus", 1);
        Some((count, self.encode_with_count(count, &sdu)))
    }

    /// SDUs waiting on the timed transmission path.
    pub fn tx_queued(&self) -> usize {
        self.tx_queue.len()
    }

    /// Bytes waiting on the timed transmission path.
    pub fn tx_queued_bytes(&self) -> usize {
        self.tx_queue.iter().map(|(_, _, sdu)| sdu.len()).sum()
    }

    /// SDUs dropped by discardTimer expiry so far.
    pub fn discard_expired_total(&self) -> u64 {
        self.discard_expired
    }

    /// t-Reordering expiry: give up on the gap and deliver everything
    /// buffered, in COUNT order, advancing the delivery edge past it.
    pub fn flush_reordering(&mut self) -> Vec<Bytes> {
        let mut out = Vec::new();
        for (c, sdu) in core::mem::take(&mut self.reorder) {
            out.push(sdu);
            self.rx_deliv = c + 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Peer entities: the UE side transmits uplink, the gNB side transmits
    /// downlink — `direction` names each entity's *own* transmit direction,
    /// which is how both ends derive the same keystream for a given PDU.
    fn pair() -> (PdcpEntity, PdcpEntity) {
        let tx = PdcpEntity::new(PdcpConfig::new(0xDEAD_BEEF_CAFE, 1, Direction::Uplink));
        let rx = PdcpEntity::new(PdcpConfig::new(0xDEAD_BEEF_CAFE, 1, Direction::Downlink));
        (tx, rx)
    }

    #[test]
    fn in_order_roundtrip() {
        let (mut tx, mut rx) = pair();
        for i in 0..50u8 {
            let sdu = Bytes::from(vec![i; 20]);
            let pdu = tx.tx_encode(&sdu);
            let delivered = rx.rx_decode(&pdu).unwrap();
            assert_eq!(delivered, vec![sdu]);
        }
    }

    #[test]
    fn payload_is_actually_ciphered() {
        let (mut tx, _) = pair();
        let sdu = Bytes::from_static(b"plaintext ping payload");
        let pdu = tx.tx_encode(&sdu);
        assert_ne!(&pdu[2..], &sdu[..], "payload went out in the clear");
    }

    #[test]
    fn wrong_key_garbles() {
        let mut tx = PdcpEntity::new(PdcpConfig::new(1, 1, Direction::Uplink));
        let mut rx = PdcpEntity::new(PdcpConfig::new(2, 1, Direction::Uplink));
        let sdu = Bytes::from_static(b"secret");
        let pdu = tx.tx_encode(&sdu);
        let out = rx.rx_decode(&pdu).unwrap();
        assert_eq!(out.len(), 1);
        assert_ne!(out[0], sdu);
    }

    #[test]
    fn reordering_buffer_holds_gap() {
        let (mut tx, mut rx) = pair();
        let a = Bytes::from_static(b"A");
        let b = Bytes::from_static(b"B");
        let c = Bytes::from_static(b"C");
        let pa = tx.tx_encode(&a);
        let pb = tx.tx_encode(&b);
        let pc = tx.tx_encode(&c);
        // Deliver out of order: C, A, B.
        assert!(rx.rx_decode(&pc).unwrap().is_empty());
        assert_eq!(rx.buffered(), 1);
        assert_eq!(rx.rx_decode(&pa).unwrap(), vec![a.clone()]);
        assert_eq!(rx.rx_decode(&pb).unwrap(), vec![b, c]);
        assert_eq!(rx.buffered(), 0);
    }

    #[test]
    fn duplicates_are_discarded() {
        let (mut tx, mut rx) = pair();
        let sdu = Bytes::from_static(b"once");
        let pdu = tx.tx_encode(&sdu);
        assert_eq!(rx.rx_decode(&pdu).unwrap().len(), 1);
        assert!(rx.rx_decode(&pdu).unwrap().is_empty());
        assert_eq!(rx.discarded(), 1);
    }

    #[test]
    fn sn_wrap_is_transparent() {
        let (mut tx, mut rx) = pair();
        // Push across the 12-bit wrap.
        for i in 0..(SN_MODULUS + 10) {
            let sdu = Bytes::copy_from_slice(&i.to_be_bytes());
            let pdu = tx.tx_encode(&sdu);
            let out = rx.rx_decode(&pdu).unwrap();
            assert_eq!(out, vec![sdu], "at count {i}");
        }
        assert_eq!(rx.discarded(), 0);
    }

    #[test]
    fn flush_delivers_past_gap() {
        let (mut tx, mut rx) = pair();
        let a = tx.tx_encode(&Bytes::from_static(b"0"));
        let _lost = tx.tx_encode(&Bytes::from_static(b"1"));
        let c = tx.tx_encode(&Bytes::from_static(b"2"));
        assert_eq!(rx.rx_decode(&a).unwrap().len(), 1);
        assert!(rx.rx_decode(&c).unwrap().is_empty());
        let flushed = rx.flush_reordering();
        assert_eq!(flushed, vec![Bytes::from_static(b"2")]);
        // Delivery edge advanced: retransmission of "1" is now stale.
        let mut tx2 = PdcpEntity::new(PdcpConfig::new(0xDEAD_BEEF_CAFE, 1, Direction::Uplink));
        let _ = tx2.tx_encode(&Bytes::new());
        let late = tx2.tx_encode(&Bytes::from_static(b"1"));
        assert!(rx.rx_decode(&late).unwrap().is_empty());
        assert_eq!(rx.discarded(), 1);
    }

    #[test]
    fn rejects_malformed() {
        let (_, mut rx) = pair();
        assert_eq!(rx.rx_decode(&Bytes::from_static(b"\x80")).unwrap_err(), PdcpError::Truncated);
        assert_eq!(
            rx.rx_decode(&Bytes::from_static(b"\x00\x00\x00")).unwrap_err(),
            PdcpError::NotDataPdu
        );
    }

    #[test]
    fn empty_sdu_roundtrips() {
        let (mut tx, mut rx) = pair();
        let pdu = tx.tx_encode(&Bytes::new());
        assert_eq!(rx.rx_decode(&pdu).unwrap(), vec![Bytes::new()]);
    }

    #[test]
    fn status_report_codec_roundtrips() {
        let r = PdcpStatusReport { fmc: 4095, received: vec![4097, 4100, 4111] };
        let pdu = r.encode();
        assert_eq!(pdu[0] & 0x80, 0, "status report must be a control PDU");
        assert_eq!(PdcpStatusReport::decode(&pdu).unwrap(), r);
        // Empty bitmap.
        let r = PdcpStatusReport { fmc: 0, received: vec![] };
        assert_eq!(PdcpStatusReport::decode(&r.encode()).unwrap(), r);
        // A data PDU is rejected.
        let mut tx = PdcpEntity::new(PdcpConfig::new(1, 1, Direction::Uplink));
        let data = tx.tx_encode(&Bytes::from_static(b"12345"));
        assert_eq!(PdcpStatusReport::decode(&data).unwrap_err(), PdcpError::NotDataPdu);
        assert_eq!(
            PdcpStatusReport::decode(&Bytes::from_static(b"\x00\x00")).unwrap_err(),
            PdcpError::Truncated
        );
    }

    #[test]
    fn confirm_releases_retransmission_buffer() {
        let (mut tx, _) = pair();
        for i in 0..10u8 {
            tx.tx_encode(&Bytes::from(vec![i]));
        }
        assert_eq!(tx.tx_pending(), 10);
        tx.confirm_up_to(7);
        assert_eq!(tx.tx_pending(), 3);
        tx.confirm_up_to(7); // idempotent
        assert_eq!(tx.tx_pending(), 3);
    }

    #[test]
    fn status_report_recovery_delivers_exactly_once_in_order() {
        let (mut tx, mut rx) = pair();
        let sdus: Vec<Bytes> = (0..6u8).map(|i| Bytes::from(vec![i; 4])).collect();
        let pdus: Vec<Bytes> = sdus.iter().map(|s| tx.tx_encode(s)).collect();
        // PDUs 0 and 4 arrive; 1,2,3,5 are lost in the RLF.
        let mut delivered: Vec<Bytes> = Vec::new();
        delivered.extend(rx.rx_decode(&pdus[0]).unwrap());
        delivered.extend(rx.rx_decode(&pdus[4]).unwrap());
        assert_eq!(delivered, vec![sdus[0].clone()]);

        // Re-establishment: rx reports, tx retransmits the survivors' gaps.
        let report = PdcpStatusReport::decode(&rx.status_report().encode()).unwrap();
        assert_eq!(report.fmc, 1);
        assert_eq!(report.received, vec![4]);
        let retx = tx.retransmit_unconfirmed(&report);
        assert_eq!(retx.len(), 4, "counts 1,2,3,5 (0 confirmed by FMC, 4 by the bitmap)");
        assert_eq!(tx.retransmitted(), 4);
        for pdu in &retx {
            delivered.extend(rx.rx_decode(pdu).unwrap());
        }
        // Every SDU delivered exactly once, in COUNT order.
        assert_eq!(delivered, sdus);
        assert_eq!(rx.discarded(), 0);
        // Nothing left pending once a full report confirms delivery.
        let final_report = rx.status_report();
        assert_eq!(final_report.fmc, 6);
        assert!(tx.retransmit_unconfirmed(&final_report).is_empty());
        assert_eq!(tx.tx_pending(), 0);
    }

    #[test]
    fn discard_timer_expires_stale_sdus_and_leaves_sn_gap() {
        let (mut tx, mut rx) = pair();
        tx.set_discard_timer(Some(Duration::from_millis(5)));
        let t0 = Instant::ZERO;
        let c0 = tx.tx_enqueue(t0, Bytes::from_static(b"fresh"));
        let c1 = tx.tx_enqueue(t0, Bytes::from_static(b"stale"));
        let c2 = tx.tx_enqueue(t0 + Duration::from_millis(4), Bytes::from_static(b"late"));
        assert_eq!((c0, c1, c2), (0, 1, 2));
        assert_eq!(tx.tx_queued(), 3);

        // Pull the head before anything expires.
        let (count, pdu0) = tx.pull_tx(t0 + Duration::from_millis(1)).unwrap();
        assert_eq!(count, 0);
        assert_eq!(rx.rx_decode(&pdu0).unwrap(), vec![Bytes::from_static(b"fresh")]);

        // At t=6ms the t0 SDU has expired but the t=4ms one has not.
        let (count, pdu2) = tx.pull_tx(t0 + Duration::from_millis(6)).unwrap();
        assert_eq!(count, 2, "COUNT 1 must be skipped, not reassigned");
        assert_eq!(tx.discard_expired_total(), 1);
        assert_eq!(tx.tx_queued(), 0);

        // The receiver sees the gap: COUNT 2 stalls in reordering until the
        // flush gives up on the hole left by the discarded SDU.
        assert!(rx.rx_decode(&pdu2).unwrap().is_empty());
        assert_eq!(rx.flush_reordering(), vec![Bytes::from_static(b"late")]);
    }

    #[test]
    fn discard_timer_none_never_expires() {
        let (mut tx, _) = pair();
        tx.tx_enqueue(Instant::ZERO, Bytes::from_static(b"forever"));
        assert_eq!(tx.expire_discards(Instant::from_micros(u64::MAX / 2_000)), 0);
        assert_eq!(tx.tx_queued(), 1);
        assert_eq!(tx.tx_queued_bytes(), 7);
    }

    #[test]
    fn retransmission_preserves_original_counts_and_bytes() {
        let (mut tx, _) = pair();
        let sdu = Bytes::from_static(b"keep my count");
        let original = tx.tx_encode(&sdu);
        let report = PdcpStatusReport { fmc: 0, received: vec![] };
        let retx = tx.retransmit_unconfirmed(&report);
        assert_eq!(retx, vec![original], "same COUNT ⇒ byte-identical PDU");
    }
}
