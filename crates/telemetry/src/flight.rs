//! Tail-forensics flight recorder: *why was the tail the tail?*
//!
//! Aggregate histograms say the p99.9 is high; they cannot say which
//! concrete ping was slow or what it spent its time on. The
//! [`FlightRecorder`] is an always-on, bounded buffer that retains full
//! evidence — span trace, fault attribution, drop reason, queue depths —
//! for (a) the K slowest pings seen and (b) every *forced* ping
//! (deadline miss, RLF, loss, handover failure), up to a cap. It lives
//! inside the [`crate::Telemetry`] sink, so the existing shard
//! sibling/absorb reduction carries it and the retained set is
//! independent of worker count: selection orders by `(rtt desc, ping
//! asc)`, a total order, making merges commutative.
//!
//! Everything recorded here is **sim time** — the flight recorder's JSON
//! export is byte-identical at any `--jobs` and is gated as such in CI
//! (unlike `profile.csv`, which holds host times).

use sim::{Duration, Instant};

/// Default worst-K retention of [`crate::Telemetry`]'s built-in recorder.
pub const DEFAULT_WORST_K: usize = 64;
/// Default cap on retained forced exemplars.
pub const DEFAULT_FORCED_CAP: usize = 512;

/// One retained stage span of an exemplar ping (same vocabulary as the
/// live trace: `stack::stage_labels`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExemplarSpan {
    /// Stage label.
    pub label: &'static str,
    /// `true` for downlink-side spans.
    pub dl: bool,
    /// Span start (sim time).
    pub start: Instant,
    /// Span end (sim time).
    pub end: Instant,
}

impl ExemplarSpan {
    /// Span duration (clamped at zero).
    pub fn duration(&self) -> Duration {
        self.end.checked_duration_since(self.start).unwrap_or(Duration::ZERO)
    }
}

/// How an exemplar ping's journey ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExemplarOutcome {
    /// Delivered within the deadline.
    OnTime,
    /// Delivered, but past the deadline.
    Late,
    /// Never delivered.
    Lost,
}

impl ExemplarOutcome {
    /// Stable text form (JSON exports).
    pub fn label(self) -> &'static str {
        match self {
            ExemplarOutcome::OnTime => "on-time",
            ExemplarOutcome::Late => "late",
            ExemplarOutcome::Lost => "lost",
        }
    }
}

/// Full forensic record of one retained ping.
#[derive(Debug, Clone, PartialEq)]
pub struct TailExemplar {
    /// Ping (packet) id.
    pub ping: u64,
    /// Round-trip time for delivered pings; time-to-loss for lost ones.
    pub rtt: Duration,
    /// How the journey ended.
    pub outcome: ExemplarOutcome,
    /// Dominant fault class (most extra latency), if any fault fired.
    pub fault: Option<&'static str>,
    /// Per-fault-class extra latency, every class that fired.
    pub fault_extra: Vec<(&'static str, Duration)>,
    /// Why the ping was dropped (lost pings only).
    pub drop_reason: Option<&'static str>,
    /// Deepest the event queue got during this ping's walk.
    pub max_queue_depth: usize,
    /// UL + DL scheduler rounds consumed (queue-pressure proxy).
    pub sched_rounds: u32,
    /// The full stage-span trace (UL then DL, in emission order).
    pub spans: Vec<ExemplarSpan>,
}

impl TailExemplar {
    /// Selection key: slowest first, ties toward the smaller ping id.
    /// Total order ⇒ worst-K retention is merge-order independent.
    fn key(&self) -> (std::cmp::Reverse<u64>, u64) {
        (std::cmp::Reverse(self.rtt.as_nanos()), self.ping)
    }
}

/// Bounded worst-K (+ forced) retention buffer; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    worst_k: usize,
    forced_cap: usize,
    worst: Vec<TailExemplar>,
    forced: Vec<TailExemplar>,
    observed: u64,
    forced_observed: u64,
}

impl FlightRecorder {
    /// A recorder retaining the `worst_k` slowest pings plus up to
    /// `forced_cap` forced (deadline-miss/RLF/loss/handover-failure) ones.
    pub fn new(worst_k: usize, forced_cap: usize) -> FlightRecorder {
        FlightRecorder {
            worst_k,
            forced_cap,
            worst: Vec::new(),
            forced: Vec::new(),
            observed: 0,
            forced_observed: 0,
        }
    }

    /// Observes one completed ping. `forced` marks pings that must be
    /// retained regardless of rank (deadline miss, RLF, loss, handover
    /// failure); when the forced buffer is full, the slowest forced
    /// exemplars win deterministically.
    pub fn observe(&mut self, exemplar: TailExemplar, forced: bool) {
        self.observed += 1;
        if forced {
            self.forced_observed += 1;
            Self::insert_bounded(&mut self.forced, exemplar.clone(), self.forced_cap);
        }
        Self::insert_bounded(&mut self.worst, exemplar, self.worst_k);
    }

    fn insert_bounded(buf: &mut Vec<TailExemplar>, ex: TailExemplar, cap: usize) {
        if cap == 0 {
            return;
        }
        let at = buf.partition_point(|e| e.key() <= ex.key());
        buf.insert(at, ex);
        buf.truncate(cap);
    }

    /// Folds another recorder into this one. Retention keys are total
    /// orders, so the result is independent of merge order.
    pub fn merge(&mut self, other: &FlightRecorder) {
        self.observed += other.observed;
        self.forced_observed += other.forced_observed;
        for ex in &other.worst {
            Self::insert_bounded(&mut self.worst, ex.clone(), self.worst_k);
        }
        for ex in &other.forced {
            Self::insert_bounded(&mut self.forced, ex.clone(), self.forced_cap);
        }
    }

    /// Pings observed in total.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Forced pings observed (not all necessarily retained).
    pub fn forced_observed(&self) -> u64 {
        self.forced_observed
    }

    /// Forced exemplars shed because the forced buffer overflowed.
    pub fn forced_dropped(&self) -> u64 {
        self.forced_observed.saturating_sub(self.forced.len() as u64)
    }

    /// The retained set: worst-K ∪ forced, deduplicated by ping id,
    /// slowest first.
    pub fn exemplars(&self) -> Vec<&TailExemplar> {
        let mut out: Vec<&TailExemplar> = self.worst.iter().chain(self.forced.iter()).collect();
        out.sort_by_key(|e| e.key());
        out.dedup_by_key(|e| e.ping);
        out
    }

    /// Hand-rolled JSON export (the workspace has no JSON serializer).
    /// Deterministic: sim-time values only, fixed float formatting.
    pub fn to_json(&self) -> String {
        let exemplars = self.exemplars();
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"worst_k\": {}, \"forced_cap\": {}, \"observed\": {}, \
             \"forced_observed\": {}, \"forced_dropped\": {}, \"retained\": {},\n",
            self.worst_k,
            self.forced_cap,
            self.observed,
            self.forced_observed,
            self.forced_dropped(),
            exemplars.len()
        ));
        out.push_str("  \"exemplars\": [\n");
        for (i, ex) in exemplars.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&exemplar_json(ex));
            out.push_str(if i + 1 < exemplars.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn us(d: Duration) -> String {
    format!("{:.3}", d.as_micros_f64())
}

/// One exemplar as a single JSON object line.
pub fn exemplar_json(ex: &TailExemplar) -> String {
    let fault = match ex.fault {
        Some(f) => format!("\"{}\"", esc(f)),
        None => "null".to_string(),
    };
    let drop_reason = match ex.drop_reason {
        Some(r) => format!("\"{}\"", esc(r)),
        None => "null".to_string(),
    };
    let fault_extra: Vec<String> = ex
        .fault_extra
        .iter()
        .map(|(f, d)| format!("{{\"fault\":\"{}\",\"extra_us\":{}}}", esc(f), us(*d)))
        .collect();
    let spans: Vec<String> = ex
        .spans
        .iter()
        .map(|s| {
            format!(
                "{{\"label\":\"{}\",\"dl\":{},\"start_us\":{:.3},\"end_us\":{:.3}}}",
                esc(s.label),
                s.dl,
                s.start.as_micros_f64(),
                s.end.as_micros_f64()
            )
        })
        .collect();
    format!(
        "{{\"ping\":{},\"rtt_us\":{},\"outcome\":\"{}\",\"fault\":{},\
         \"drop_reason\":{},\"max_queue_depth\":{},\"sched_rounds\":{},\
         \"fault_extra\":[{}],\"spans\":[{}]}}",
        ex.ping,
        us(ex.rtt),
        ex.outcome.label(),
        fault,
        drop_reason,
        ex.max_queue_depth,
        ex.sched_rounds,
        fault_extra.join(","),
        spans.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(ping: u64, rtt_us: u64) -> TailExemplar {
        TailExemplar {
            ping,
            rtt: Duration::from_micros(rtt_us),
            outcome: ExemplarOutcome::OnTime,
            fault: None,
            fault_extra: Vec::new(),
            drop_reason: None,
            max_queue_depth: 1,
            sched_rounds: 1,
            spans: vec![ExemplarSpan {
                label: "APP↓",
                dl: false,
                start: Instant::ZERO,
                end: Instant::from_micros(rtt_us),
            }],
        }
    }

    #[test]
    fn worst_k_keeps_the_slowest() {
        let mut fr = FlightRecorder::new(2, 8);
        fr.observe(ex(1, 100), false);
        fr.observe(ex(2, 300), false);
        fr.observe(ex(3, 200), false);
        let pings: Vec<u64> = fr.exemplars().iter().map(|e| e.ping).collect();
        assert_eq!(pings, vec![2, 3]);
        assert_eq!(fr.observed(), 3);
    }

    #[test]
    fn forced_survive_even_when_fast() {
        let mut fr = FlightRecorder::new(1, 8);
        fr.observe(ex(1, 900), false);
        fr.observe(ex(2, 10), true); // fast, but forced (e.g. RLF ping)
        let pings: Vec<u64> = fr.exemplars().iter().map(|e| e.ping).collect();
        assert_eq!(pings, vec![1, 2]);
        assert_eq!(fr.forced_observed(), 1);
        assert_eq!(fr.forced_dropped(), 0);
    }

    #[test]
    fn forced_overflow_keeps_slowest_and_counts_drops() {
        let mut fr = FlightRecorder::new(0, 2);
        fr.observe(ex(1, 10), true);
        fr.observe(ex(2, 30), true);
        fr.observe(ex(3, 20), true);
        let pings: Vec<u64> = fr.exemplars().iter().map(|e| e.ping).collect();
        assert_eq!(pings, vec![2, 3]);
        assert_eq!(fr.forced_dropped(), 1);
    }

    #[test]
    fn merge_is_order_independent() {
        let pings = [(1u64, 500u64), (2, 100), (3, 700), (4, 700), (5, 50), (6, 900)];
        let mut a = FlightRecorder::new(3, 2);
        let mut b = FlightRecorder::new(3, 2);
        for &(p, r) in &pings[..3] {
            a.observe(ex(p, r), p % 2 == 0);
        }
        for &(p, r) in &pings[3..] {
            b.observe(ex(p, r), p % 2 == 0);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_json(), ba.to_json());
        // Equal rtts (pings 3 and 4) break ties toward the smaller id.
        let pings_kept: Vec<u64> = ab.exemplars().iter().map(|e| e.ping).collect();
        assert_eq!(pings_kept, vec![6, 3, 4]);
    }

    #[test]
    fn json_shape_is_parseable_enough() {
        let mut fr = FlightRecorder::new(4, 4);
        let mut lost = ex(9, 2_000);
        lost.outcome = ExemplarOutcome::Lost;
        lost.fault = Some("channel-burst");
        lost.fault_extra = vec![("channel-burst", Duration::from_micros(1_500))];
        lost.drop_reason = Some("channel-burst");
        fr.observe(lost, true);
        let json = fr.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"outcome\":\"lost\""));
        assert!(json.contains("\"drop_reason\":\"channel-burst\""));
        assert!(json.contains("\"retained\": 1"));
    }
}
