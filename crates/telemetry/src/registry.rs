//! The metrics registry: counters, gauges and log-linear histograms keyed
//! by `(layer, name, label)`.
//!
//! Keys are static strings so that recording on the hot path allocates
//! nothing; `BTreeMap` storage keeps every snapshot deterministically
//! ordered, which the CSV/JSON exporters and the golden-file tests rely
//! on. Histograms store nanosecond values in log-linear buckets
//! (HdrHistogram-style: [`SUB_BUCKETS`] linear sub-buckets per power of
//! two), bounding the relative quantile error at `1/SUB_BUCKETS` while
//! keeping memory constant regardless of sample count.

use std::collections::BTreeMap;

use sim::Duration;
// The histogram itself lives in `sim::stats` (scale experiments record
// through it directly, behind `sim::Recording`); re-exported here so
// telemetry callers keep their established paths.
pub use sim::{BucketExemplar, LogLinearHistogram, SUB_BUCKETS};

/// A `(layer, name, label)` metric key, e.g. `mac/harq_retx` or
/// `radio/submit_us{ue}`. The label discriminates instances of the same
/// metric (direction, node, link) and is empty for singleton metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Layer namespace: `sdap`, `pdcp`, `rlc`, `mac`, `phy`, `radio`,
    /// `channel`, `rrc`, `corenet`, `audit`, ...
    pub layer: &'static str,
    /// Metric name within the layer.
    pub name: &'static str,
    /// Optional instance discriminator (empty when unused).
    pub label: &'static str,
}

impl MetricKey {
    /// An unlabeled key.
    pub fn new(layer: &'static str, name: &'static str) -> MetricKey {
        MetricKey { layer, name, label: "" }
    }

    /// A labeled key.
    pub fn labeled(layer: &'static str, name: &'static str, label: &'static str) -> MetricKey {
        MetricKey { layer, name, label }
    }

    /// Canonical text form: `layer/name` or `layer/name{label}`.
    pub fn render(&self) -> String {
        if self.label.is_empty() {
            format!("{}/{}", self.layer, self.name)
        } else {
            format!("{}/{}{{{}}}", self.layer, self.name, self.label)
        }
    }
}

/// Point-in-time value of one metric, as exported in snapshots.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Last-write-wins instantaneous value.
    Gauge(f64),
    /// Histogram summary (values recorded in ns, reported in µs).
    Histogram(HistogramSummary),
}

/// One exported bucket exemplar: the upper bound of its bucket plus the
/// exemplar's exact value and ping id (OpenMetrics `# {…}` style).
#[derive(Debug, Clone, PartialEq)]
pub struct ExemplarRow {
    /// Exclusive upper bound of the bucket, µs.
    pub le_us: f64,
    /// The exemplar's exact recorded value, µs.
    pub value_us: f64,
    /// The ping (packet id) that produced it.
    pub ping: u64,
}

/// Quantile summary of a [`LogLinearHistogram`], in microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Mean, µs.
    pub mean_us: f64,
    /// Median, µs.
    pub p50_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// 99.9th percentile, µs.
    pub p999_us: f64,
    /// Maximum, µs.
    pub max_us: f64,
    /// Bucket exemplars (empty for histograms recorded without ping ids).
    pub exemplars: Vec<ExemplarRow>,
}

impl HistogramSummary {
    fn from(h: &LogLinearHistogram) -> HistogramSummary {
        HistogramSummary {
            count: h.count(),
            mean_us: h.mean() / 1_000.0,
            p50_us: h.quantile(0.50) as f64 / 1_000.0,
            p99_us: h.quantile(0.99) as f64 / 1_000.0,
            p999_us: h.quantile(0.999) as f64 / 1_000.0,
            max_us: h.max() as f64 / 1_000.0,
            exemplars: h
                .exemplars()
                .map(|(idx, ex)| ExemplarRow {
                    le_us: LogLinearHistogram::bucket_bounds(idx).1 as f64 / 1_000.0,
                    value_us: ex.value as f64 / 1_000.0,
                    ping: ex.ping,
                })
                .collect(),
        }
    }
}

/// One exported `(key, value)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRow {
    /// The metric's key.
    pub key: MetricKey,
    /// Its value at snapshot time.
    pub value: MetricValue,
}

/// The registry all layers record into (behind the [`crate::Telemetry`]
/// handle).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, LogLinearHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `n` to the counter at `key`.
    pub fn count(&mut self, key: MetricKey, n: u64) {
        *self.counters.entry(key).or_insert(0) += n;
    }

    /// Sets the gauge at `key`.
    pub fn gauge(&mut self, key: MetricKey, value: f64) {
        self.gauges.insert(key, value);
    }

    /// Records `ns` into the histogram at `key`.
    pub fn record_ns(&mut self, key: MetricKey, ns: u64) {
        self.histograms.entry(key).or_default().record(ns);
    }

    /// Records `ns` into the histogram at `key`, attaching `ping` as the
    /// bucket's exemplar (see [`LogLinearHistogram::record_with_exemplar`]).
    pub fn record_ns_with_exemplar(&mut self, key: MetricKey, ns: u64, ping: u64) {
        self.histograms.entry(key).or_default().record_with_exemplar(ns, ping);
    }

    /// Records a duration into the histogram at `key`.
    pub fn record(&mut self, key: MetricKey, d: Duration) {
        self.record_ns(key, d.as_nanos());
    }

    /// Number of distinct metric keys.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Folds another registry into this one: counters add, histograms
    /// merge bucket-wise, gauges are last-write-wins (`other` is the later
    /// write — reducers fold shards in index order, so the surviving gauge
    /// is the one the highest-indexed shard set, exactly as a sequential
    /// run of the same shards would leave it).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (&key, &n) in &other.counters {
            self.count(key, n);
        }
        for (&key, &v) in &other.gauges {
            self.gauge(key, v);
        }
        for (&key, h) in &other.histograms {
            self.histograms.entry(key).or_default().merge(h);
        }
    }

    /// A deterministic, key-ordered snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut rows: Vec<MetricRow> = Vec::with_capacity(self.len());
        rows.extend(
            self.counters
                .iter()
                .map(|(&key, &v)| MetricRow { key, value: MetricValue::Counter(v) }),
        );
        rows.extend(
            self.gauges.iter().map(|(&key, &v)| MetricRow { key, value: MetricValue::Gauge(v) }),
        );
        rows.extend(self.histograms.iter().map(|(&key, h)| MetricRow {
            key,
            value: MetricValue::Histogram(HistogramSummary::from(h)),
        }));
        rows.sort_by_key(|a| a.key);
        MetricsSnapshot { rows }
    }
}

/// An ordered, self-describing export of the registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// All rows, sorted by key.
    pub rows: Vec<MetricRow>,
}

fn fmt_us(v: f64) -> String {
    format!("{v:.3}")
}

impl MetricsSnapshot {
    /// Number of metric keys.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no metrics were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Distinct layer namespaces, sorted.
    pub fn layers(&self) -> Vec<&'static str> {
        let mut layers: Vec<&'static str> = self.rows.iter().map(|r| r.key.layer).collect();
        layers.sort_unstable();
        layers.dedup();
        layers
    }

    /// Looks up the value of `layer/name` (unlabeled).
    pub fn get(&self, layer: &str, name: &str) -> Option<&MetricValue> {
        self.rows
            .iter()
            .find(|r| r.key.layer == layer && r.key.name == name && r.key.label.is_empty())
            .map(|r| &r.value)
    }

    /// Counter value of `layer/name`, if it is a counter.
    pub fn counter(&self, layer: &str, name: &str) -> Option<u64> {
        match self.get(layer, name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Aligned plain-text table (the `repro metrics` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self.rows.iter().map(|r| r.key.render().len()).max().unwrap_or(0).max(24);
        for row in &self.rows {
            let key = row.key.render();
            match &row.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{key:<width$}  counter    {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{key:<width$}  gauge      {v:.3}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{key:<width$}  histogram  n={} mean={}us p50={}us p99={}us max={}us\n",
                        h.count,
                        fmt_us(h.mean_us),
                        fmt_us(h.p50_us),
                        fmt_us(h.p99_us),
                        fmt_us(h.max_us),
                    ));
                }
            }
        }
        out
    }

    /// CSV export (`key,kind,count,value,p50_us,p99_us,p999_us,max_us`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("key,kind,count,value,p50_us,p99_us,p999_us,max_us\n");
        for row in &self.rows {
            let key = row.key.render();
            match &row.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{key},counter,{v},{v},,,,\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{key},gauge,1,{v:.6},,,,\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{key},histogram,{},{},{},{},{},{}\n",
                        h.count,
                        fmt_us(h.mean_us),
                        fmt_us(h.p50_us),
                        fmt_us(h.p99_us),
                        fmt_us(h.p999_us),
                        fmt_us(h.max_us),
                    ));
                }
            }
        }
        out
    }

    /// JSON export (hand-rolled; the workspace has no JSON serializer).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[\n");
        for (i, row) in self.rows.iter().enumerate() {
            let key = row.key.render();
            let body = match &row.value {
                MetricValue::Counter(v) => {
                    format!("{{\"key\":\"{key}\",\"kind\":\"counter\",\"value\":{v}}}")
                }
                MetricValue::Gauge(v) => {
                    format!("{{\"key\":\"{key}\",\"kind\":\"gauge\",\"value\":{v:.6}}}")
                }
                MetricValue::Histogram(h) => {
                    let exemplars = if h.exemplars.is_empty() {
                        String::new()
                    } else {
                        let rows: Vec<String> = h
                            .exemplars
                            .iter()
                            .map(|e| {
                                format!(
                                    "{{\"le_us\":{},\"value_us\":{},\"ping\":{}}}",
                                    fmt_us(e.le_us),
                                    fmt_us(e.value_us),
                                    e.ping
                                )
                            })
                            .collect();
                        format!(",\"exemplars\":[{}]", rows.join(","))
                    };
                    format!(
                        "{{\"key\":\"{key}\",\"kind\":\"histogram\",\"count\":{},\
                         \"mean_us\":{},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{},\"max_us\":{}{exemplars}}}",
                        h.count,
                        fmt_us(h.mean_us),
                        fmt_us(h.p50_us),
                        fmt_us(h.p99_us),
                        fmt_us(h.p999_us),
                        fmt_us(h.max_us),
                    )
                }
            };
            out.push_str("  ");
            out.push_str(&body);
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn registry_merge_matches_sequential_recording() {
        let key = MetricKey::new("mac", "proc_us");
        let gauge = MetricKey::new("sched", "backlog");
        let mut whole = MetricsRegistry::new();
        let mut left = MetricsRegistry::new();
        let mut right = MetricsRegistry::new();
        for ns in [100u64, 2_000, 300_000] {
            left.record_ns(key, ns);
            whole.record_ns(key, ns);
        }
        for ns in [5u64, 40_000] {
            right.record_ns(key, ns);
            whole.record_ns(key, ns);
        }
        left.count(key, 2);
        right.count(key, 3);
        whole.count(key, 5);
        left.gauge(gauge, 1.0);
        right.gauge(gauge, 7.0);
        whole.gauge(gauge, 1.0);
        whole.gauge(gauge, 7.0);
        left.merge(&right);
        assert_eq!(left.snapshot(), whole.snapshot());
    }

    #[test]
    fn histogram_merge_with_empty_sides() {
        let mut a = LogLinearHistogram::new();
        let mut b = LogLinearHistogram::new();
        a.merge(&b); // empty ⊕ empty
        assert_eq!(a.count(), 0);
        b.record(42);
        a.merge(&b); // empty ⊕ filled
        assert_eq!((a.count(), a.min(), a.max()), (1, 42, 42));
        a.merge(&LogLinearHistogram::new()); // filled ⊕ empty
        assert_eq!((a.count(), a.min(), a.max()), (1, 42, 42));
    }

    #[test]
    fn key_render_forms() {
        assert_eq!(MetricKey::new("mac", "harq_retx").render(), "mac/harq_retx");
        assert_eq!(MetricKey::labeled("radio", "submit_us", "ue").render(), "radio/submit_us{ue}");
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_BUCKETS {
            let (lo, hi) = LogLinearHistogram::bucket_bounds(LogLinearHistogram::index_of(v));
            assert_eq!((lo, hi), (v, v + 1));
        }
    }

    #[test]
    fn bucket_indices_are_contiguous_across_octave_boundary() {
        assert_eq!(
            LogLinearHistogram::index_of(SUB_BUCKETS - 1) + 1,
            LogLinearHistogram::index_of(SUB_BUCKETS)
        );
    }

    #[test]
    fn quantiles_track_recorded_values() {
        let mut h = LogLinearHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1_000); // 1..=1000 µs in ns
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.50);
        // Log-linear resolution: within 1/16 of the true 500_000 ns.
        assert!((p50 as f64 - 500_000.0).abs() / 500_000.0 <= 1.0 / 16.0 + 1e-9, "p50={p50}");
        let p100 = h.quantile(1.0);
        assert!(p100 <= 1_000_000 && p100 as f64 >= 1_000_000.0 * (1.0 - 1.0 / 16.0));
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.min(), 1_000);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = LogLinearHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn registry_snapshot_is_ordered_and_complete() {
        let mut reg = MetricsRegistry::new();
        reg.count(MetricKey::new("mac", "harq_retx"), 2);
        reg.count(MetricKey::new("mac", "harq_retx"), 1);
        reg.gauge(MetricKey::new("channel", "loss_rate"), 0.01);
        reg.record(MetricKey::new("radio", "submit_us"), Duration::from_micros(7));
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.layers(), vec!["channel", "mac", "radio"]);
        assert_eq!(snap.counter("mac", "harq_retx"), Some(3));
        let keys: Vec<String> = snap.rows.iter().map(|r| r.key.render()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert!(snap.render().contains("mac/harq_retx"));
        assert!(snap.to_csv().starts_with("key,kind,"));
        assert!(snap.to_json().contains("\"kind\":\"histogram\""));
    }

    #[test]
    fn exemplars_keep_the_largest_value_with_smallest_ping_tiebreak() {
        let mut h = LogLinearHistogram::new();
        h.record_with_exemplar(100_000, 7);
        h.record_with_exemplar(101_000, 3); // same bucket, larger value wins
        h.record_with_exemplar(101_000, 9); // tie on value: smaller ping stays
        h.record_with_exemplar(5, 1); // exact low bucket
        let got: Vec<(usize, BucketExemplar)> = h.exemplars().collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (5, BucketExemplar { value: 5, ping: 1 }));
        assert_eq!(got[1].1, BucketExemplar { value: 101_000, ping: 3 });
    }

    #[test]
    fn exemplar_merge_is_order_independent() {
        let mut a = LogLinearHistogram::new();
        let mut b = LogLinearHistogram::new();
        a.record_with_exemplar(2_000, 10);
        a.record_with_exemplar(900_000, 4);
        b.record_with_exemplar(2_100, 2);
        b.record_with_exemplar(900_000, 1);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        let left: Vec<_> = ab.exemplars().collect();
        let right: Vec<_> = ba.exemplars().collect();
        assert_eq!(left, right);
    }

    #[test]
    fn exemplars_flow_into_snapshot_json() {
        let mut reg = MetricsRegistry::new();
        reg.record_ns_with_exemplar(MetricKey::new("journey", "rtt"), 123_456, 42);
        reg.record_ns(MetricKey::new("mac", "proc_us"), 5_000);
        let snap = reg.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"exemplars\":[{\"le_us\":"), "json: {json}");
        assert!(json.contains("\"ping\":42"));
        // Histograms recorded without ping ids carry no exemplar array.
        let mac_row = json.lines().find(|l| l.contains("mac/proc_us")).unwrap();
        assert!(!mac_row.contains("exemplars"));
    }

    proptest! {
        #[test]
        fn bucket_bounds_contain_value(v in 0u64..u64::MAX / 2) {
            let idx = LogLinearHistogram::index_of(v);
            let (lo, hi) = LogLinearHistogram::bucket_bounds(idx);
            prop_assert!(lo <= v && v < hi, "v={} not in [{}, {})", v, lo, hi);
        }

        #[test]
        fn bucket_width_bounds_relative_error(v in SUB_BUCKETS..u64::MAX / 2) {
            let (lo, hi) = LogLinearHistogram::bucket_bounds(LogLinearHistogram::index_of(v));
            // Width of the containing bucket never exceeds lo / SUB_BUCKETS
            // (6.25% relative resolution).
            prop_assert!(hi - lo <= lo / SUB_BUCKETS + 1);
        }

        #[test]
        fn bucket_index_is_monotone(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
            let (lo, hi) = (a.min(b), a.max(b));
            prop_assert!(LogLinearHistogram::index_of(lo) <= LogLinearHistogram::index_of(hi));
        }

        #[test]
        fn quantile_within_recorded_range(vs in prop::collection::vec(0u64..10_000_000, 1..200), q in 0.0f64..1.0) {
            let mut h = LogLinearHistogram::new();
            for &v in &vs {
                h.record(v);
            }
            let est = h.quantile(q);
            let lo = *vs.iter().min().unwrap();
            let hi = *vs.iter().max().unwrap();
            prop_assert!(est >= lo && est <= hi, "quantile {} outside [{}, {}]", est, lo, hi);
        }
    }
}
