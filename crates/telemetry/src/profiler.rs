//! Host wall-time profiler: *where does real time go when we simulate?*
//!
//! [`Profiler`] is the measurement substrate for the speed program: a
//! cheap, cloneable handle recording **host** (`std::time::Instant`)
//! elapsed time per named stage into per-stage [`LogLinearHistogram`]s.
//! The stack's event driver opens one [`ProfScope`] around each hop
//! dispatch (keyed by the hop's name), and the overload/handover engines
//! scope their event kinds, so `repro profile` can emit per-hop
//! *self*-time — each dispatch is non-reentrant, so scope elapsed time is
//! self time.
//!
//! Host time is noise from the simulation's point of view, so the
//! profiler is kept strictly apart from [`crate::Telemetry`]: nothing it
//! records can reach a sim-time artifact, and a disabled handle (the
//! default) never calls the host clock at all. Dark, instrumented and
//! profiled runs therefore stay bit-identical — the zero-perturbation
//! invariant extends to the profiler.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant as HostInstant;

use crate::handle::recover_lock;
use crate::registry::LogLinearHistogram;

#[derive(Debug, Default)]
struct ProfilerInner {
    stages: BTreeMap<&'static str, LogLinearHistogram>,
}

/// Shared host wall-time sink; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<Mutex<ProfilerInner>>>,
}

impl Profiler {
    /// An enabled profiler.
    pub fn new() -> Profiler {
        Profiler { inner: Some(Arc::new(Mutex::new(ProfilerInner::default()))) }
    }

    /// A disabled handle: scopes are inert and never read the host clock.
    pub fn disabled() -> Profiler {
        Profiler::default()
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with<R>(&self, f: impl FnOnce(&mut ProfilerInner) -> R) -> Option<R> {
        self.inner.as_ref().map(|inner| f(&mut recover_lock(inner)))
    }

    /// Opens a scoped timer for `stage`; elapsed host time is recorded
    /// when the guard drops. Inert (no clock read) when disabled.
    pub fn scope(&self, stage: &'static str) -> ProfScope<'_> {
        ProfScope {
            prof: self,
            stage,
            start: if self.is_enabled() { Some(HostInstant::now()) } else { None },
        }
    }

    /// Records `ns` of host time against `stage` directly.
    pub fn record_ns(&self, stage: &'static str, ns: u64) {
        self.with(|p| p.stages.entry(stage).or_default().record(ns));
    }

    /// A fresh handle with the same enabled state — the per-shard sink of
    /// a parallel sweep. Shards record into their own sibling (no
    /// cross-thread lock contention inflating the very times being
    /// measured) and the reducer folds them back with
    /// [`absorb`](Self::absorb).
    pub fn sibling(&self) -> Profiler {
        if self.is_enabled() {
            Profiler::new()
        } else {
            Profiler::disabled()
        }
    }

    /// Folds another profiler's histograms into this one (bucket-wise, so
    /// the merge is commutative). No-op when either handle is disabled or
    /// both share one sink.
    pub fn absorb(&self, other: &Profiler) {
        let (Some(mine), Some(theirs)) = (self.inner.as_ref(), other.inner.as_ref()) else {
            return;
        };
        if Arc::ptr_eq(mine, theirs) {
            return;
        }
        let theirs = recover_lock(theirs);
        let mut mine = recover_lock(mine);
        for (&stage, h) in &theirs.stages {
            mine.stages.entry(stage).or_default().merge(h);
        }
    }

    /// Per-stage summaries, hottest (largest total time) first; ties break
    /// by stage name so the ordering is reproducible for equal totals.
    pub fn snapshot(&self) -> Vec<StageProfile> {
        let mut rows = self
            .with(|p| {
                p.stages
                    .iter()
                    .map(|(&stage, h)| StageProfile {
                        stage,
                        count: h.count(),
                        total_ms: h.mean() * h.count() as f64 / 1_000_000.0,
                        mean_us: h.mean() / 1_000.0,
                        p50_us: h.quantile(0.50) as f64 / 1_000.0,
                        p99_us: h.quantile(0.99) as f64 / 1_000.0,
                        max_us: h.max() as f64 / 1_000.0,
                    })
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default();
        rows.sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms).then(a.stage.cmp(b.stage)));
        rows
    }

    /// Host self-time CSV
    /// (`stage,count,total_ms,share,mean_us,p50_us,p99_us,max_us`), hottest
    /// stage first. `share` is the stage's fraction of all profiled time.
    /// Host times vary run to run, so this artifact is **excluded** from
    /// the CI determinism byte-compare.
    pub fn to_csv(&self) -> String {
        let rows = self.snapshot();
        let total: f64 = rows.iter().map(|r| r.total_ms).sum();
        let mut out = String::from("stage,count,total_ms,share,mean_us,p50_us,p99_us,max_us\n");
        for r in &rows {
            let share = if total > 0.0 { r.total_ms / total } else { 0.0 };
            out.push_str(&format!(
                "{},{},{:.3},{:.4},{:.3},{:.3},{:.3},{:.3}\n",
                r.stage, r.count, r.total_ms, share, r.mean_us, r.p50_us, r.p99_us, r.max_us
            ));
        }
        out
    }
}

/// One stage's host-time summary (times in host µs/ms).
#[derive(Debug, Clone, PartialEq)]
pub struct StageProfile {
    /// Stage name (a `HopId` name or an engine's event-kind label).
    pub stage: &'static str,
    /// Number of scoped timings.
    pub count: u64,
    /// Total host time across all timings, ms.
    pub total_ms: f64,
    /// Mean per timing, µs.
    pub mean_us: f64,
    /// Median per timing, µs.
    pub p50_us: f64,
    /// 99th percentile per timing, µs.
    pub p99_us: f64,
    /// Slowest single timing, µs.
    pub max_us: f64,
}

/// Scope guard returned by [`Profiler::scope`]; records elapsed host time
/// against its stage on drop.
#[derive(Debug)]
pub struct ProfScope<'a> {
    prof: &'a Profiler,
    stage: &'static str,
    start: Option<HostInstant>,
}

impl Drop for ProfScope<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.prof.record_ns(self.stage, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let p = Profiler::disabled();
        {
            let _s = p.scope("hop");
        }
        p.record_ns("hop", 123);
        assert!(!p.is_enabled());
        assert!(p.snapshot().is_empty());
        assert_eq!(p.to_csv(), "stage,count,total_ms,share,mean_us,p50_us,p99_us,max_us\n");
    }

    #[test]
    fn scopes_record_and_clones_share_one_sink() {
        let p = Profiler::new();
        let c = p.clone();
        {
            let _s = c.scope("hop-a");
        }
        p.record_ns("hop-a", 1_000);
        p.record_ns("hop-b", 5_000_000);
        let rows = p.snapshot();
        assert_eq!(rows.len(), 2);
        // Hottest first: hop-b's 5 ms dominates.
        assert_eq!(rows[0].stage, "hop-b");
        assert_eq!(rows[0].count, 1);
        let a = rows.iter().find(|r| r.stage == "hop-a").unwrap();
        assert_eq!(a.count, 2);
        let csv = p.to_csv();
        assert!(csv.starts_with("stage,count,"));
        assert!(csv.contains("hop-b,1,"));
    }

    #[test]
    fn sibling_absorb_reduces_like_one_sink() {
        let parent = Profiler::new();
        let a = parent.sibling();
        let b = parent.sibling();
        a.record_ns("hop", 100);
        b.record_ns("hop", 200);
        b.record_ns("other", 50);
        parent.absorb(&a);
        parent.absorb(&b);
        let rows = parent.snapshot();
        let hop = rows.iter().find(|r| r.stage == "hop").unwrap();
        assert_eq!(hop.count, 2);
        assert_eq!(rows.iter().find(|r| r.stage == "other").unwrap().count, 1);
        // Absorbing self or a disabled handle is a no-op.
        parent.absorb(&parent.clone());
        parent.absorb(&Profiler::disabled());
        assert_eq!(parent.snapshot().iter().map(|r| r.count).sum::<u64>(), 3);
        assert!(!Profiler::disabled().sibling().is_enabled());
    }
}
