//! The structured event journal: a bounded ring buffer of typed,
//! sim-time-stamped events.
//!
//! This generalizes the stack's ad-hoc `PingFaultTrace` / `StageSpan`
//! plumbing: every layer appends [`JournalEvent`]s through the
//! [`crate::Telemetry`] handle, the ring keeps the most recent
//! `capacity` of them (counting what it sheds), and the
//! [`crate::perfetto`] exporter renders the surviving window as a
//! flamegraph-style timeline.

use std::collections::VecDeque;

use sim::{Duration, FaultKind, Instant};

/// One sim-time-stamped event. `Copy` so journaling never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JournalEvent {
    /// A Fig-3 journey stage (one bar in the Perfetto timeline).
    Stage {
        /// Ping sequence number.
        ping: u64,
        /// `true` for the downlink half of the journey.
        dl: bool,
        /// Stage label (see `stack::stage_labels`).
        label: &'static str,
        /// Stage start.
        start: Instant,
        /// Stage end.
        end: Instant,
    },
    /// The scheduler issued an uplink grant.
    Grant {
        /// Ping sequence number.
        ping: u64,
        /// When the grant's DCI lands at the UE.
        at: Instant,
        /// Granted transport-block payload bytes.
        bytes: usize,
    },
    /// A scheduling-request transmission (one round of the SR cycle).
    SrAttempt {
        /// Ping sequence number.
        ping: u64,
        /// SR transmission instant.
        at: Instant,
        /// `true` when the PUCCH carrying it was lost.
        lost: bool,
    },
    /// A HARQ round ended in NACK (retransmission follows).
    HarqNack {
        /// Ping sequence number.
        ping: u64,
        /// `true` on the downlink leg.
        dl: bool,
        /// 1-based retransmission round.
        round: u32,
        /// When the NACK was processed.
        at: Instant,
    },
    /// The fault injector fired.
    FaultInjected {
        /// Which fault.
        kind: FaultKind,
        /// When it bit the packet.
        at: Instant,
        /// Extra latency it charged (zero for pure losses).
        extra: Duration,
    },
    /// Radio-link failure declared (RRC re-establishment follows).
    Rlf {
        /// Ping sequence number.
        ping: u64,
        /// `true` when the DL leg failed.
        dl: bool,
        /// Declaration instant.
        at: Instant,
    },
    /// An RRC re-establishment attempt completed.
    RrcReestablished {
        /// Ping sequence number.
        ping: u64,
        /// Completion instant.
        at: Instant,
        /// `false` when the budget ran out and the UE went to idle.
        ok: bool,
    },
    /// A packet dropped by a bounded buffer or a degradation action —
    /// the per-ping drop attribution of the overload subsystem.
    Drop {
        /// Ping / packet sequence number.
        ping: u64,
        /// Drop instant.
        at: Instant,
        /// Typed drop reason (labels from `stack::overload::DropReason`).
        reason: &'static str,
    },
    /// An inter-cell handover transition (trigger/detach/complete/
    /// too-late/too-early/ping-pong — labels from `stack::handover`).
    Handover {
        /// Source cell index.
        from: u8,
        /// Target cell index.
        to: u8,
        /// Transition label.
        label: &'static str,
        /// Transition instant.
        at: Instant,
    },
    /// A GTP-U path-supervision transition (probe-lost/path-down/failover/
    /// restored — labels from `corenet::PathEventKind::label`).
    PathEvent {
        /// Transition label.
        label: &'static str,
        /// Transition instant.
        at: Instant,
    },
    /// A free-form point event from any layer.
    Marker {
        /// Layer namespace.
        layer: &'static str,
        /// Event label.
        label: &'static str,
        /// Event instant.
        at: Instant,
    },
}

impl JournalEvent {
    /// Representative timestamp (start for spans).
    pub fn at(&self) -> Instant {
        match *self {
            JournalEvent::Stage { start, .. } => start,
            JournalEvent::Grant { at, .. }
            | JournalEvent::SrAttempt { at, .. }
            | JournalEvent::HarqNack { at, .. }
            | JournalEvent::FaultInjected { at, .. }
            | JournalEvent::Rlf { at, .. }
            | JournalEvent::RrcReestablished { at, .. }
            | JournalEvent::Drop { at, .. }
            | JournalEvent::Handover { at, .. }
            | JournalEvent::PathEvent { at, .. }
            | JournalEvent::Marker { at, .. } => at,
        }
    }

    /// Ping the event belongs to, `None` for events that are not
    /// per-ping (fault injections, path/handover transitions, markers).
    /// The flight recorder's exemplar-only trace export filters on this.
    pub fn ping(&self) -> Option<u64> {
        match *self {
            JournalEvent::Stage { ping, .. }
            | JournalEvent::Grant { ping, .. }
            | JournalEvent::SrAttempt { ping, .. }
            | JournalEvent::HarqNack { ping, .. }
            | JournalEvent::Rlf { ping, .. }
            | JournalEvent::RrcReestablished { ping, .. }
            | JournalEvent::Drop { ping, .. } => Some(ping),
            JournalEvent::FaultInjected { .. }
            | JournalEvent::Handover { .. }
            | JournalEvent::PathEvent { .. }
            | JournalEvent::Marker { .. } => None,
        }
    }

    /// Short kind tag (metrics labels, debugging).
    pub fn kind_name(&self) -> &'static str {
        match self {
            JournalEvent::Stage { .. } => "stage",
            JournalEvent::Grant { .. } => "grant",
            JournalEvent::SrAttempt { .. } => "sr",
            JournalEvent::HarqNack { .. } => "harq-nack",
            JournalEvent::FaultInjected { .. } => "fault",
            JournalEvent::Rlf { .. } => "rlf",
            JournalEvent::RrcReestablished { .. } => "rrc-reestablish",
            JournalEvent::Drop { .. } => "drop",
            JournalEvent::Handover { .. } => "handover",
            JournalEvent::PathEvent { .. } => "path",
            JournalEvent::Marker { .. } => "marker",
        }
    }
}

/// Bounded ring buffer of [`JournalEvent`]s.
///
/// Overflow sheds the *oldest* events (a crashed run's tail is worth more
/// than its head) and counts them, so exporters can say how much history
/// was lost.
#[derive(Debug, Clone)]
pub struct EventJournal {
    capacity: usize,
    events: VecDeque<JournalEvent>,
    dropped: u64,
}

impl EventJournal {
    /// A journal holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> EventJournal {
        let capacity = capacity.max(1);
        EventJournal { capacity, events: VecDeque::with_capacity(capacity), dropped: 0 }
    }

    /// Appends an event, shedding the oldest when full.
    pub fn push(&mut self, event: JournalEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &JournalEvent> {
        self.events.iter()
    }

    /// Copies the retained window out, oldest first.
    pub fn to_vec(&self) -> Vec<JournalEvent> {
        self.events.iter().copied().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events shed to overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Replays another journal's retained window into this ring, oldest
    /// first, and carries over its overflow count. Used by the parallel
    /// reducer: folding shard journals in shard order approximates one
    /// global ring over the concatenated event stream.
    pub fn absorb(&mut self, other: &EventJournal) {
        self.dropped += other.dropped;
        for &event in other.events() {
            self.push(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marker(i: u64) -> JournalEvent {
        JournalEvent::Marker { layer: "test", label: "m", at: Instant::from_micros(i) }
    }

    #[test]
    fn ring_keeps_newest_and_counts_dropped() {
        let mut j = EventJournal::new(3);
        for i in 0..5 {
            j.push(marker(i));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        let ts: Vec<u64> = j.events().map(|e| e.at().as_nanos() / 1_000).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn ring_preserves_insertion_order() {
        let mut j = EventJournal::new(100);
        for i in (0..50).rev() {
            j.push(marker(i)); // deliberately out of time order
        }
        let ts: Vec<u64> = j.events().map(|e| e.at().as_nanos() / 1_000).collect();
        let expected: Vec<u64> = (0..50).rev().collect();
        assert_eq!(ts, expected, "journal must preserve insertion order, not timestamp order");
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut j = EventJournal::new(0);
        j.push(marker(1));
        j.push(marker(2));
        assert_eq!(j.len(), 1);
        assert_eq!(j.capacity(), 1);
        assert_eq!(j.dropped(), 1);
    }

    #[test]
    fn event_kind_names_are_distinct() {
        let evs = [
            JournalEvent::Stage {
                ping: 0,
                dl: false,
                label: "radio",
                start: Instant::ZERO,
                end: Instant::ZERO,
            },
            JournalEvent::Grant { ping: 0, at: Instant::ZERO, bytes: 32 },
            JournalEvent::SrAttempt { ping: 0, at: Instant::ZERO, lost: false },
            JournalEvent::HarqNack { ping: 0, dl: false, round: 1, at: Instant::ZERO },
            JournalEvent::FaultInjected {
                kind: FaultKind::SrLoss,
                at: Instant::ZERO,
                extra: Duration::ZERO,
            },
            JournalEvent::Rlf { ping: 0, dl: true, at: Instant::ZERO },
            JournalEvent::RrcReestablished { ping: 0, at: Instant::ZERO, ok: true },
            JournalEvent::Drop { ping: 0, at: Instant::ZERO, reason: "rlc-full" },
            JournalEvent::Handover { from: 0, to: 1, label: "complete", at: Instant::ZERO },
            JournalEvent::PathEvent { label: "failover", at: Instant::ZERO },
            JournalEvent::Marker { layer: "sim", label: "tick", at: Instant::ZERO },
        ];
        let mut names: Vec<&str> = evs.iter().map(|e| e.kind_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), evs.len());
    }
}
