//! Chrome trace-event / Perfetto JSON exporter for the event journal.
//!
//! The output follows the Trace Event Format's JSON-object flavor
//! (`{"traceEvents": [...]}`) understood by both `chrome://tracing` and
//! <https://ui.perfetto.dev>. Each ping renders as one *process* with an
//! uplink thread, a downlink thread and a point-event thread, so a full
//! journey shows up as a flamegraph-style timeline; fabric-level events
//! (fault injections, path supervision) live in a dedicated process 0.
//!
//! The workspace vendors no JSON serializer, so the document is emitted
//! by hand — field order is fixed, timestamps are microseconds with
//! nanosecond precision, and the whole export is deterministic (the
//! golden-file test compares it byte for byte).

use core::fmt;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::io;

use crate::journal::JournalEvent;

/// Why a trace export failed. Formatting into an in-memory `String`
/// cannot fail, so in practice every real failure is an [`io::Error`]
/// from the destination (disk full, permission, closed pipe) — but the
/// formatter path is typed rather than unwrapped so no exporter code
/// panics.
#[derive(Debug)]
pub enum TraceExportError {
    /// The trace document could not be formatted.
    Format(fmt::Error),
    /// The destination writer failed.
    Io(io::Error),
}

impl fmt::Display for TraceExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceExportError::Format(e) => write!(f, "trace formatting failed: {e}"),
            TraceExportError::Io(e) => write!(f, "trace write failed: {e}"),
        }
    }
}

impl std::error::Error for TraceExportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceExportError::Format(e) => Some(e),
            TraceExportError::Io(e) => Some(e),
        }
    }
}

impl From<io::Error> for TraceExportError {
    fn from(e: io::Error) -> TraceExportError {
        TraceExportError::Io(e)
    }
}

impl From<fmt::Error> for TraceExportError {
    fn from(e: fmt::Error) -> TraceExportError {
        TraceExportError::Format(e)
    }
}

/// Process id used for events not tied to one ping (faults, path
/// supervision). Ping `n` maps to pid `n + 1`.
pub const FABRIC_PID: u64 = 0;

const TID_UL: u64 = 1;
const TID_DL: u64 = 2;
const TID_EVENTS: u64 = 3;

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn ts_us(nanos: u64) -> String {
    format!("{:.3}", nanos as f64 / 1_000.0)
}

/// Renders `events` as a Chrome trace-event JSON document.
///
/// Stages become `"ph":"X"` complete events; everything else becomes a
/// `"ph":"i"` instant. Metadata events name each process and thread so
/// the Perfetto UI shows "ping 3 / uplink" instead of raw ids.
///
/// Formatting into the returned `String` cannot fail (`String`'s
/// `fmt::Write` impl never errors), so this stays infallible; exporters
/// that write to fallible destinations use [`export_chrome_trace`].
pub fn chrome_trace_json(events: &[JournalEvent]) -> String {
    let mut out = String::new();
    let _infallible = write_chrome_trace(&mut out, events);
    debug_assert!(_infallible.is_ok());
    out
}

/// Writes the trace document for `events` into `w`, surfacing formatter
/// and I/O failures as a typed [`TraceExportError`] instead of
/// panicking. This is the `io::Result`-style export path used by
/// `repro trace`.
pub fn export_chrome_trace<W: io::Write>(
    w: &mut W,
    events: &[JournalEvent],
) -> Result<(), TraceExportError> {
    let mut doc = String::new();
    write_chrome_trace(&mut doc, events)?;
    w.write_all(doc.as_bytes())?;
    Ok(())
}

/// Formats the trace document into any `fmt::Write` sink, propagating
/// write errors with `?` (no `.unwrap()` anywhere on the render path).
pub fn write_chrome_trace<W: fmt::Write>(out: &mut W, events: &[JournalEvent]) -> fmt::Result {
    let mut lines: Vec<String> = Vec::new();
    let mut pids: BTreeSet<u64> = BTreeSet::new();
    let mut threads: BTreeSet<(u64, u64)> = BTreeSet::new();

    for ev in events {
        let (pid, tid) = placement(ev);
        pids.insert(pid);
        threads.insert((pid, tid));
        lines.push(render_event(ev, pid, tid)?);
    }

    let mut meta: Vec<String> = Vec::new();
    for &pid in &pids {
        let pname =
            if pid == FABRIC_PID { "fabric".to_string() } else { format!("ping {}", pid - 1) };
        meta.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{pname}\"}}}}"
        ));
    }
    for &(pid, tid) in &threads {
        let tname = match tid {
            TID_UL => {
                if pid == FABRIC_PID {
                    "faults"
                } else {
                    "uplink"
                }
            }
            TID_DL => {
                if pid == FABRIC_PID {
                    "path"
                } else {
                    "downlink"
                }
            }
            _ => "events",
        };
        meta.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{tname}\"}}}}"
        ));
    }

    out.write_str("{\"traceEvents\":[\n")?;
    let total = meta.len() + lines.len();
    for (i, line) in meta.into_iter().chain(lines).enumerate() {
        out.write_str("  ")?;
        out.write_str(&line)?;
        out.write_str(if i + 1 < total { ",\n" } else { "\n" })?;
    }
    out.write_str("],\"displayTimeUnit\":\"ns\"}\n")?;
    Ok(())
}

fn placement(ev: &JournalEvent) -> (u64, u64) {
    match *ev {
        JournalEvent::Stage { ping, dl, .. } => (ping + 1, if dl { TID_DL } else { TID_UL }),
        JournalEvent::Grant { ping, .. }
        | JournalEvent::SrAttempt { ping, .. }
        | JournalEvent::Rlf { ping, .. }
        | JournalEvent::RrcReestablished { ping, .. }
        | JournalEvent::Drop { ping, .. } => (ping + 1, TID_EVENTS),
        JournalEvent::HarqNack { ping, .. } => (ping + 1, TID_EVENTS),
        JournalEvent::FaultInjected { .. } => (FABRIC_PID, TID_UL),
        JournalEvent::Handover { .. } => (FABRIC_PID, TID_DL),
        JournalEvent::PathEvent { .. } => (FABRIC_PID, TID_DL),
        JournalEvent::Marker { .. } => (FABRIC_PID, TID_EVENTS),
    }
}

fn render_event(ev: &JournalEvent, pid: u64, tid: u64) -> Result<String, fmt::Error> {
    let mut s = String::new();
    match *ev {
        JournalEvent::Stage { label, start, end, .. } => {
            let dur = end.as_nanos().saturating_sub(start.as_nanos());
            write!(
                s,
                "{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{pid},\"tid\":{tid}}}",
                esc(label),
                ts_us(start.as_nanos()),
                ts_us(dur),
            )?;
        }
        JournalEvent::Grant { at, bytes, .. } => {
            write!(
                s,
                "{{\"name\":\"UL grant\",\"cat\":\"mac\",\"ph\":\"i\",\"ts\":{},\"pid\":{pid},\
                 \"tid\":{tid},\"s\":\"t\",\"args\":{{\"bytes\":{bytes}}}}}",
                ts_us(at.as_nanos()),
            )?;
        }
        JournalEvent::SrAttempt { at, lost, .. } => {
            let name = if lost { "SR (lost)" } else { "SR" };
            write!(
                s,
                "{{\"name\":\"{name}\",\"cat\":\"mac\",\"ph\":\"i\",\"ts\":{},\"pid\":{pid},\
                 \"tid\":{tid},\"s\":\"t\"}}",
                ts_us(at.as_nanos()),
            )?;
        }
        JournalEvent::HarqNack { round, at, .. } => {
            write!(
                s,
                "{{\"name\":\"HARQ NACK\",\"cat\":\"mac\",\"ph\":\"i\",\"ts\":{},\"pid\":{pid},\
                 \"tid\":{tid},\"s\":\"t\",\"args\":{{\"round\":{round}}}}}",
                ts_us(at.as_nanos()),
            )?;
        }
        JournalEvent::FaultInjected { kind, at, extra } => {
            write!(
                s,
                "{{\"name\":\"{}\",\"cat\":\"fault\",\"ph\":\"i\",\"ts\":{},\"pid\":{pid},\
                 \"tid\":{tid},\"s\":\"g\",\"args\":{{\"extra_us\":{:.3}}}}}",
                esc(kind.label()),
                ts_us(at.as_nanos()),
                extra.as_micros_f64(),
            )?;
        }
        JournalEvent::Rlf { at, dl, .. } => {
            let name = if dl { "RLF (dl)" } else { "RLF (ul)" };
            write!(
                s,
                "{{\"name\":\"{name}\",\"cat\":\"rrc\",\"ph\":\"i\",\"ts\":{},\"pid\":{pid},\
                 \"tid\":{tid},\"s\":\"t\"}}",
                ts_us(at.as_nanos()),
            )?;
        }
        JournalEvent::RrcReestablished { at, ok, .. } => {
            let name = if ok { "RRC reestablished" } else { "RRC reestablish failed" };
            write!(
                s,
                "{{\"name\":\"{name}\",\"cat\":\"rrc\",\"ph\":\"i\",\"ts\":{},\"pid\":{pid},\
                 \"tid\":{tid},\"s\":\"t\"}}",
                ts_us(at.as_nanos()),
            )?;
        }
        JournalEvent::Drop { at, reason, .. } => {
            write!(
                s,
                "{{\"name\":\"drop: {}\",\"cat\":\"overload\",\"ph\":\"i\",\"ts\":{},\
                 \"pid\":{pid},\"tid\":{tid},\"s\":\"t\"}}",
                esc(reason),
                ts_us(at.as_nanos()),
            )?;
        }
        JournalEvent::Handover { from, to, label, at } => {
            write!(
                s,
                "{{\"name\":\"HO {}\",\"cat\":\"rrc\",\"ph\":\"i\",\"ts\":{},\"pid\":{pid},\
                 \"tid\":{tid},\"s\":\"g\",\"args\":{{\"from\":{from},\"to\":{to}}}}}",
                esc(label),
                ts_us(at.as_nanos()),
            )?;
        }
        JournalEvent::PathEvent { label, at } => {
            write!(
                s,
                "{{\"name\":\"{}\",\"cat\":\"corenet\",\"ph\":\"i\",\"ts\":{},\"pid\":{pid},\
                 \"tid\":{tid},\"s\":\"g\"}}",
                esc(label),
                ts_us(at.as_nanos()),
            )?;
        }
        JournalEvent::Marker { layer, label, at } => {
            write!(
                s,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":{pid},\
                 \"tid\":{tid},\"s\":\"g\"}}",
                esc(label),
                esc(layer),
                ts_us(at.as_nanos()),
            )?;
        }
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::{Duration, FaultKind, Instant};

    /// Golden-file test: the exporter's output is part of its contract
    /// (CI uploads these traces; Perfetto must keep loading them).
    #[test]
    fn golden_trace_document() {
        let events = [
            JournalEvent::Stage {
                ping: 0,
                dl: false,
                label: "radio",
                start: Instant::from_micros(10),
                end: Instant::from_micros(35),
            },
            JournalEvent::Stage {
                ping: 0,
                dl: true,
                label: "DL data",
                start: Instant::from_micros(40),
                end: Instant::from_nanos(60_500),
            },
            JournalEvent::SrAttempt { ping: 0, at: Instant::from_micros(5), lost: true },
            JournalEvent::FaultInjected {
                kind: FaultKind::JitterStorm,
                at: Instant::from_micros(12),
                extra: Duration::from_micros(250),
            },
        ];
        let got = chrome_trace_json(&events);
        let want = concat!(
            "{\"traceEvents\":[\n",
            "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"fabric\"}},\n",
            "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"ping 0\"}},\n",
            "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,\"args\":{\"name\":\"faults\"}},\n",
            "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"uplink\"}},\n",
            "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,\"args\":{\"name\":\"downlink\"}},\n",
            "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":3,\"args\":{\"name\":\"events\"}},\n",
            "  {\"name\":\"radio\",\"cat\":\"stage\",\"ph\":\"X\",\"ts\":10.000,\"dur\":25.000,\"pid\":1,\"tid\":1},\n",
            "  {\"name\":\"DL data\",\"cat\":\"stage\",\"ph\":\"X\",\"ts\":40.000,\"dur\":20.500,\"pid\":1,\"tid\":2},\n",
            "  {\"name\":\"SR (lost)\",\"cat\":\"mac\",\"ph\":\"i\",\"ts\":5.000,\"pid\":1,\"tid\":3,\"s\":\"t\"},\n",
            "  {\"name\":\"jitter-storm\",\"cat\":\"fault\",\"ph\":\"i\",\"ts\":12.000,\"pid\":0,\"tid\":1,\"s\":\"g\",\"args\":{\"extra_us\":250.000}}\n",
            "],\"displayTimeUnit\":\"ns\"}\n",
        );
        assert_eq!(got, want);
    }

    #[test]
    fn empty_journal_still_valid_document() {
        let got = chrome_trace_json(&[]);
        assert_eq!(got, "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ns\"}\n");
    }

    #[test]
    fn braces_balance_on_every_event_kind() {
        let events = [
            JournalEvent::Grant { ping: 2, at: Instant::from_micros(1), bytes: 32 },
            JournalEvent::HarqNack { ping: 2, dl: true, round: 1, at: Instant::from_micros(2) },
            JournalEvent::Rlf { ping: 2, dl: false, at: Instant::from_micros(3) },
            JournalEvent::RrcReestablished { ping: 2, at: Instant::from_micros(4), ok: true },
            JournalEvent::PathEvent { label: "failover", at: Instant::from_micros(5) },
            JournalEvent::Marker { layer: "sim", label: "tick", at: Instant::from_micros(6) },
        ];
        let doc = chrome_trace_json(&events);
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        assert!(doc.contains("\"UL grant\""));
        assert!(doc.contains("\"HARQ NACK\""));
        assert!(doc.contains("\"args\":{\"round\":1}"));
        assert!(doc.contains("\"ping 2\""));
    }

    #[test]
    fn export_path_writes_identical_bytes_and_types_io_errors() {
        let events = [JournalEvent::Marker { layer: "sim", label: "tick", at: Instant::ZERO }];
        let mut buf: Vec<u8> = Vec::new();
        export_chrome_trace(&mut buf, &events).expect("Vec sink cannot fail");
        assert_eq!(String::from_utf8(buf).unwrap(), chrome_trace_json(&events));

        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = export_chrome_trace(&mut Broken, &events).unwrap_err();
        assert!(matches!(err, TraceExportError::Io(_)));
        assert!(err.to_string().contains("disk on fire"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn fault_kind_label_check() {
        // The golden test hard-codes FaultKind::JitterStorm's label; keep
        // them in sync.
        assert_eq!(FaultKind::JitterStorm.label(), "jitter-storm");
    }
}
