//! Cross-layer telemetry backbone for the URLLC workspace.
//!
//! The paper's core move is *attribution* — splitting the 0.5 ms budget
//! into protocol, processing and radio sources (Fig 2/3). This crate
//! supplies the machinery to do that attribution continuously rather
//! than via hand-picked stage spans:
//!
//! * [`MetricsRegistry`] — counters, gauges and log-linear histograms
//!   keyed by `(layer, name, label)`, snapshotable to text/CSV/JSON
//!   ([`MetricsSnapshot`]).
//! * [`EventJournal`] — a bounded ring buffer of typed, sim-time-stamped
//!   [`JournalEvent`]s (grants, SR cycles, HARQ NACKs, fault injections,
//!   RLF/recovery transitions, path failovers).
//! * [`perfetto`] — a Chrome trace-event / Perfetto JSON exporter that
//!   renders the journal as a flamegraph-style timeline.
//! * [`FlightRecorder`] — an always-on, bounded tail-forensics buffer
//!   retaining full evidence (spans, fault attribution, drop reasons,
//!   queue depths) for the K slowest pings plus every deadline-miss /
//!   RLF / loss / handover-failure ping.
//! * [`Profiler`] — a *host* wall-time profiler (scoped timers around
//!   hop dispatches), kept strictly apart from sim-time telemetry so
//!   host noise can never reach a deterministic artifact.
//! * [`Telemetry`] — the cheap cloneable handle threaded through the
//!   stack; disabled by default, in which case every call is a no-op.
//!
//! The crate sits next to `sim` in the dependency order so every layer
//! crate (phy, radio, channel, ran, corenet, stack, core, bench) can
//! record into it. Recording consumes no RNG draws and no simulated
//! time; telemetry on/off leaves simulation results bit-identical.

#![warn(missing_docs)]

pub mod flight;
pub mod handle;
pub mod journal;
pub mod perfetto;
pub mod profiler;
pub mod registry;

pub use flight::{
    ExemplarOutcome, ExemplarSpan, FlightRecorder, TailExemplar, DEFAULT_FORCED_CAP,
    DEFAULT_WORST_K,
};
pub use handle::{poison_recoveries, Telemetry, TelemetrySummary};
pub use journal::{EventJournal, JournalEvent};
pub use perfetto::TraceExportError;
pub use profiler::{ProfScope, Profiler, StageProfile};
pub use registry::{
    BucketExemplar, ExemplarRow, HistogramSummary, LogLinearHistogram, MetricKey, MetricRow,
    MetricValue, MetricsRegistry, MetricsSnapshot, SUB_BUCKETS,
};
