//! The cheap, cloneable [`Telemetry`] handle every layer records through.
//!
//! A handle is either *disabled* (the default — every call is a no-op on
//! a `None`, no allocation, no locking) or *enabled*, in which case all
//! clones share one registry + journal behind an `Arc<Mutex<..>>`. The
//! simulation is single-threaded, so the mutex is uncontended; it exists
//! so clones embedded in `Clone`able entities (PDCP, RLC, radio heads)
//! stay coherent without threading `&mut` borrows through every layer.
//!
//! Crucially, recording consumes **no RNG draws and no simulated time** —
//! an instrumented run and a dark run produce bit-identical results (the
//! determinism test in `tests/` holds this line).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use sim::{Duration, Instant};

use crate::flight::{FlightRecorder, TailExemplar, DEFAULT_FORCED_CAP, DEFAULT_WORST_K};
use crate::journal::{EventJournal, JournalEvent};
use crate::registry::{MetricKey, MetricsRegistry, MetricsSnapshot};

/// Times a telemetry/profiler mutex was found poisoned and recovered.
static POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// Locks a telemetry-owned mutex, recovering from poisoning instead of
/// panicking: a shard that panicked mid-record leaves at worst one
/// half-written observation, which must not cascade into the merge path
/// and take the whole sweep down. Every recovery is counted (see
/// [`poison_recoveries`]) so it is observable rather than silent.
pub(crate) fn recover_lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| {
        POISON_RECOVERIES.fetch_add(1, Ordering::Relaxed);
        poisoned.into_inner()
    })
}

/// How many times a poisoned telemetry/profiler mutex was recovered
/// (process-wide, monotonic). Zero in a healthy run.
pub fn poison_recoveries() -> u64 {
    POISON_RECOVERIES.load(Ordering::Relaxed)
}

#[derive(Debug)]
struct TelemetryInner {
    registry: MetricsRegistry,
    journal: EventJournal,
    flight: FlightRecorder,
}

/// Shared telemetry sink; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<TelemetryInner>>>,
}

impl Telemetry {
    /// An enabled handle with a journal ring of `journal_capacity` events
    /// and an always-on flight recorder at the default retention
    /// ([`DEFAULT_WORST_K`] slowest + up to [`DEFAULT_FORCED_CAP`] forced).
    pub fn new(journal_capacity: usize) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(TelemetryInner {
                registry: MetricsRegistry::new(),
                journal: EventJournal::new(journal_capacity),
                flight: FlightRecorder::new(DEFAULT_WORST_K, DEFAULT_FORCED_CAP),
            }))),
        }
    }

    /// A disabled handle: every recording call is a no-op.
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with<R>(&self, f: impl FnOnce(&mut TelemetryInner) -> R) -> Option<R> {
        self.inner.as_ref().map(|inner| f(&mut recover_lock(inner)))
    }

    /// Adds `n` to counter `layer/name`.
    pub fn count(&self, layer: &'static str, name: &'static str, n: u64) {
        self.with(|t| t.registry.count(MetricKey::new(layer, name), n));
    }

    /// Adds `n` to counter `layer/name{label}`.
    pub fn count_labeled(
        &self,
        layer: &'static str,
        name: &'static str,
        label: &'static str,
        n: u64,
    ) {
        self.with(|t| t.registry.count(MetricKey::labeled(layer, name, label), n));
    }

    /// Sets gauge `layer/name`.
    pub fn gauge(&self, layer: &'static str, name: &'static str, value: f64) {
        self.with(|t| t.registry.gauge(MetricKey::new(layer, name), value));
    }

    /// Records a duration into histogram `layer/name`.
    pub fn record(&self, layer: &'static str, name: &'static str, d: Duration) {
        self.with(|t| t.registry.record(MetricKey::new(layer, name), d));
    }

    /// Records a duration into histogram `layer/name`, attaching `ping`
    /// as an OpenMetrics-style bucket exemplar so the quantile report can
    /// name a concrete replayable ping per bucket.
    pub fn record_with_exemplar(
        &self,
        layer: &'static str,
        name: &'static str,
        d: Duration,
        ping: u64,
    ) {
        self.with(|t| {
            t.registry.record_ns_with_exemplar(MetricKey::new(layer, name), d.as_nanos(), ping)
        });
    }

    /// Records a duration into histogram `layer/name{label}`.
    pub fn record_labeled(
        &self,
        layer: &'static str,
        name: &'static str,
        label: &'static str,
        d: Duration,
    ) {
        self.with(|t| t.registry.record(MetricKey::labeled(layer, name, label), d));
    }

    /// Appends an event to the journal.
    pub fn journal(&self, event: JournalEvent) {
        self.with(|t| t.journal.push(event));
    }

    /// Journals one Fig-3 journey stage — the span-emission entry point
    /// used by the stack's telemetry decorator.
    pub fn journal_stage(
        &self,
        ping: u64,
        dl: bool,
        label: &'static str,
        start: Instant,
        end: Instant,
    ) {
        self.journal(JournalEvent::Stage { ping, dl, label, start, end });
    }

    /// Hands one completed ping's forensic record to the flight recorder.
    /// `forced` marks pings that must be retained regardless of rank
    /// (deadline miss, RLF, loss, handover failure).
    pub fn flight_record(&self, exemplar: TailExemplar, forced: bool) {
        self.with(|t| t.flight.observe(exemplar, forced));
    }

    /// The flight recorder's retained exemplars, slowest first (empty
    /// when disabled).
    pub fn flight_exemplars(&self) -> Vec<TailExemplar> {
        self.with(|t| t.flight.exemplars().into_iter().cloned().collect()).unwrap_or_default()
    }

    /// The flight recorder's deterministic JSON export (the
    /// `tail_exemplars.json` section body). Empty-recorder JSON when
    /// disabled.
    pub fn flight_json(&self) -> String {
        self.with(|t| t.flight.to_json()).unwrap_or_else(|| FlightRecorder::default().to_json())
    }

    /// Snapshot of all metrics (empty when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.with(|t| t.registry.snapshot()).unwrap_or_default()
    }

    /// The journal's retained window, oldest first (empty when disabled).
    pub fn journal_events(&self) -> Vec<JournalEvent> {
        self.with(|t| t.journal.to_vec()).unwrap_or_default()
    }

    /// Events shed by journal overflow.
    pub fn journal_dropped(&self) -> u64 {
        self.with(|t| t.journal.dropped()).unwrap_or(0)
    }

    /// A fresh, empty handle with the same enabled state and journal
    /// capacity — the per-shard sink of a parallel sweep. Shards record
    /// into their own sibling (no cross-thread interleaving) and the
    /// reducer folds them back with [`absorb`](Self::absorb) in shard
    /// order, so the merged registry and journal are independent of worker
    /// count.
    pub fn sibling(&self) -> Telemetry {
        match self.with(|t| t.journal.capacity()) {
            Some(capacity) => Telemetry::new(capacity),
            None => Telemetry::disabled(),
        }
    }

    /// Folds another handle's registry and journal into this one: counters
    /// and histograms merge, gauges are last-write-wins, and `other`'s
    /// journal window is replayed into this ring in order (its own
    /// overflow drops carry over). No-op when either handle is disabled
    /// or both share one sink.
    pub fn absorb(&self, other: &Telemetry) {
        let (Some(mine), Some(theirs)) = (self.inner.as_ref(), other.inner.as_ref()) else {
            return;
        };
        if Arc::ptr_eq(mine, theirs) {
            return;
        }
        let theirs = recover_lock(theirs);
        let mut mine = recover_lock(mine);
        mine.registry.merge(&theirs.registry);
        mine.journal.absorb(&theirs.journal);
        mine.flight.merge(&theirs.flight);
    }

    /// Compact summary for embedding in experiment results.
    pub fn summary(&self) -> TelemetrySummary {
        self.with(|t| {
            let snap = t.registry.snapshot();
            TelemetrySummary {
                enabled: true,
                metric_keys: snap.len(),
                layers: snap.layers().iter().map(|s| s.to_string()).collect(),
                journal_events: t.journal.len(),
                journal_dropped: t.journal.dropped(),
            }
        })
        .unwrap_or_default()
    }
}

/// What an experiment reports about its telemetry collection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySummary {
    /// `false` when the run was dark (no handle attached).
    pub enabled: bool,
    /// Distinct metric keys recorded.
    pub metric_keys: usize,
    /// Distinct layer namespaces that recorded at least one metric.
    pub layers: Vec<String>,
    /// Journal events retained at run end.
    pub journal_events: usize,
    /// Journal events shed to ring overflow.
    pub journal_dropped: u64,
}

impl TelemetrySummary {
    /// One-line report form.
    pub fn render(&self) -> String {
        if !self.enabled {
            return "telemetry: off".to_string();
        }
        format!(
            "telemetry: {} keys across {} layers [{}], journal {} events ({} dropped)",
            self.metric_keys,
            self.layers.len(),
            self.layers.join(", "),
            self.journal_events,
            self.journal_dropped,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Instant;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        t.count("mac", "harq_retx", 1);
        t.record("radio", "submit_us", Duration::from_micros(3));
        t.journal(JournalEvent::Marker { layer: "x", label: "y", at: Instant::ZERO });
        assert!(!t.is_enabled());
        assert!(t.snapshot().is_empty());
        assert!(t.journal_events().is_empty());
        assert_eq!(t.summary(), TelemetrySummary::default());
        assert_eq!(t.summary().render(), "telemetry: off");
    }

    #[test]
    fn clones_share_one_sink() {
        let t = Telemetry::new(16);
        let c = t.clone();
        c.count("mac", "harq_retx", 2);
        t.count("mac", "harq_retx", 3);
        c.journal(JournalEvent::Marker { layer: "sim", label: "tick", at: Instant::ZERO });
        assert_eq!(t.snapshot().counter("mac", "harq_retx"), Some(5));
        assert_eq!(t.journal_events().len(), 1);
        let s = t.summary();
        assert!(s.enabled);
        assert_eq!(s.metric_keys, 1);
        assert_eq!(s.layers, vec!["mac".to_string()]);
        assert_eq!(s.journal_events, 1);
        assert!(s.render().contains("1 keys"));
    }

    #[test]
    fn sibling_and_absorb_reduce_like_one_sink() {
        let parent = Telemetry::new(4);
        let shard_a = parent.sibling();
        let shard_b = parent.sibling();
        shard_a.count("mac", "harq_retx", 2);
        shard_b.count("mac", "harq_retx", 5);
        shard_a.record("radio", "submit_us", Duration::from_micros(10));
        shard_b.record("radio", "submit_us", Duration::from_micros(20));
        for i in 0..3u64 {
            shard_a.journal(JournalEvent::Marker {
                layer: "a",
                label: "m",
                at: Instant::from_micros(i),
            });
            shard_b.journal(JournalEvent::Marker {
                layer: "b",
                label: "m",
                at: Instant::from_micros(i),
            });
        }
        parent.absorb(&shard_a);
        parent.absorb(&shard_b);
        assert_eq!(parent.snapshot().counter("mac", "harq_retx"), Some(7));
        // Ring capacity 4: the six replayed markers shed the two oldest.
        let events = parent.journal_events();
        assert_eq!(events.len(), 4);
        assert_eq!(parent.journal_dropped(), 2);
        // Absorbing a disabled handle or the sink itself is a no-op.
        parent.absorb(&Telemetry::disabled());
        parent.absorb(&parent.clone());
        assert_eq!(parent.journal_events().len(), 4);
        // A disabled parent spawns disabled siblings.
        assert!(!Telemetry::disabled().sibling().is_enabled());
    }

    #[test]
    fn poisoned_mutex_recovers_and_is_counted() {
        let t = Telemetry::new(4);
        t.count("mac", "harq_retx", 1);
        // Poison the sink: panic while holding the lock on another thread.
        let t2 = t.clone();
        let before = poison_recoveries();
        let _ = std::thread::spawn(move || {
            t2.with(|_| panic!("shard dies mid-record"));
        })
        .join();
        // The handle keeps working instead of cascading the panic into
        // the merge path, and the recovery is observable.
        t.count("mac", "harq_retx", 2);
        assert_eq!(t.snapshot().counter("mac", "harq_retx"), Some(3));
        let parent = Telemetry::new(4);
        parent.absorb(&t);
        assert_eq!(parent.snapshot().counter("mac", "harq_retx"), Some(3));
        assert!(poison_recoveries() > before);
    }

    #[test]
    fn flight_recorder_reduces_through_sibling_absorb() {
        use crate::flight::{ExemplarOutcome, TailExemplar};
        let mk = |ping: u64, rtt_us: u64| TailExemplar {
            ping,
            rtt: Duration::from_micros(rtt_us),
            outcome: ExemplarOutcome::OnTime,
            fault: None,
            fault_extra: Vec::new(),
            drop_reason: None,
            max_queue_depth: 1,
            sched_rounds: 1,
            spans: Vec::new(),
        };
        let parent = Telemetry::new(4);
        let a = parent.sibling();
        let b = parent.sibling();
        a.flight_record(mk(1, 100), false);
        b.flight_record(mk(2, 900), true);
        parent.absorb(&a);
        parent.absorb(&b);
        let exs = parent.flight_exemplars();
        assert_eq!(exs.len(), 2);
        assert_eq!(exs[0].ping, 2); // slowest first
        assert!(parent.flight_json().contains("\"ping\":2"));
        assert!(Telemetry::disabled().flight_exemplars().is_empty());
        assert!(Telemetry::disabled().flight_json().contains("\"retained\": 0"));
    }

    #[test]
    fn labeled_keys_are_distinct() {
        let t = Telemetry::new(4);
        t.count_labeled("radio", "submit", "ue", 1);
        t.count_labeled("radio", "submit", "gnb", 2);
        t.record_labeled("radio", "submit_us", "ue", Duration::from_micros(1));
        assert_eq!(t.snapshot().len(), 3);
    }
}
