//! Propagation delay.
//!
//! At private-5G scale (tens to hundreds of metres) radio propagation costs
//! well under a microsecond — negligible next to every other latency source
//! in the paper, but accounted for so the end-to-end budget is complete and
//! so that the model stays honest if someone simulates a 30 km rural cell.

use sim::Duration;

/// Speed of light in vacuum, m/s.
const C_M_PER_S: f64 = 299_792_458.0;

/// One-way propagation delay over `distance_m` metres.
pub fn propagation_delay(distance_m: f64) -> Duration {
    assert!(distance_m >= 0.0 && distance_m.is_finite(), "invalid distance");
    Duration::from_micros_f64(distance_m / C_M_PER_S * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_meters_is_a_third_of_a_microsecond() {
        let d = propagation_delay(100.0);
        assert!(d > Duration::from_nanos(330) && d < Duration::from_nanos(336), "{d}");
    }

    #[test]
    fn zero_distance_zero_delay() {
        assert_eq!(propagation_delay(0.0), Duration::ZERO);
    }

    #[test]
    fn thirty_km_rural_cell_is_100us() {
        let d = propagation_delay(30_000.0);
        assert!(d > Duration::from_micros(99) && d < Duration::from_micros(101), "{d}");
    }

    #[test]
    #[should_panic(expected = "invalid distance")]
    fn rejects_negative_distance() {
        propagation_delay(-1.0);
    }
}
