//! # urllc-channel — wireless channel models
//!
//! Latency experiments need a *delay + loss* channel, not an IQ-accurate
//! propagation simulator (the substitution is recorded in DESIGN.md). Two
//! models cover the paper's arguments:
//!
//! * [`fr1`] — sub-6 GHz link: an SNR/PER curve with log-normal shadowing.
//!   FR1 is the reliable workhorse of the paper's §5 design choices; its
//!   loss rate feeds the RLC retransmission and reliability experiments.
//! * [`fr2`] — mmWave link: a two-state line-of-sight blockage process.
//!   This reproduces the §1/§5 argument that FR2's 15.625 µs slots don't
//!   help because the link itself vanishes for milliseconds at a time —
//!   the "sub-millisecond latencies only 4.4 % of the time" observation
//!   from the Fezeu et al. measurements the paper cites.
//! * [`propagation`] — distance-based propagation delay (sub-µs at private
//!   5G scale; included so the end-to-end account is complete).

pub mod fr1;
pub mod fr2;
pub mod propagation;

pub use fr1::{Fr1Link, Fr1LinkConfig, LossSample};
pub use fr2::{BlockageState, BlockageTrace, Fr2Link, Fr2LinkConfig};
pub use propagation::propagation_delay;
