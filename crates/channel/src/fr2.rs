//! FR2 (mmWave) link model: line-of-sight blockage.
//!
//! mmWave links die when the line of sight is cut — by a person, a moving
//! machine, or the user's own hand — and come back only after the blocker
//! moves or beam re-training succeeds. We model the link as a continuous-
//! time two-state process (LoS / blocked) with exponential dwell times.
//! While blocked, packets cannot be delivered; they wait for the link to
//! return. This is the mechanism behind the paper's §1/§5 point (measured
//! by Fezeu et al.): FR2 has 15.625 µs slots yet delivers sub-millisecond
//! latency only a few percent of the time.

use serde::{Deserialize, Serialize};
use sim::{Duration, Instant, SimRng};

/// Instantaneous link state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockageState {
    /// Line of sight available; the link works.
    LineOfSight,
    /// Blocked; nothing gets through.
    Blocked,
}

/// Configuration of the blockage process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fr2LinkConfig {
    /// Mean dwell time in the LoS state.
    pub mean_los: Duration,
    /// Mean dwell time in the blocked state (blocker transit + beam
    /// recovery).
    pub mean_blocked: Duration,
}

impl Fr2LinkConfig {
    /// A busy indoor mmWave environment calibrated so that the fraction of
    /// packets completing in under 1 ms lands in the low single-digit
    /// percents — the regime of the 4.4 % measurement the paper cites.
    /// LoS windows are short (people keep crossing the beam) and blockages
    /// last several milliseconds (blocker transit + beam re-training).
    pub fn busy_indoor() -> Fr2LinkConfig {
        Fr2LinkConfig {
            mean_los: Duration::from_micros(380),
            mean_blocked: Duration::from_millis(14),
        }
    }

    /// A static, clear deployment: long LoS dwell, rare short blockages.
    pub fn clear_static() -> Fr2LinkConfig {
        Fr2LinkConfig {
            mean_los: Duration::from_millis(500),
            mean_blocked: Duration::from_millis(2),
        }
    }

    /// Long-run fraction of time the link is blocked.
    pub fn blocked_fraction(&self) -> f64 {
        let b = self.mean_blocked.as_micros_f64();
        let l = self.mean_los.as_micros_f64();
        b / (b + l)
    }
}

/// A stateful FR2 link: tracks the blockage process along simulation time.
///
/// The process is sampled lazily: state transitions are generated on demand
/// as queries arrive, which keeps the link usable from a discrete-event
/// loop without a dedicated event stream.
#[derive(Debug, Clone)]
pub struct Fr2Link {
    config: Fr2LinkConfig,
    state: BlockageState,
    /// Time at which the current state ends.
    state_until: Instant,
}

impl Fr2Link {
    /// Creates a link starting in LoS at the epoch.
    pub fn new(config: Fr2LinkConfig, rng: &mut SimRng) -> Fr2Link {
        let first = sim::Dist::Exponential { mean: config.mean_los }.sample(rng);
        Fr2Link { config, state: BlockageState::LineOfSight, state_until: Instant::ZERO + first }
    }

    /// The configuration.
    pub fn config(&self) -> &Fr2LinkConfig {
        &self.config
    }

    fn advance_to(&mut self, t: Instant, rng: &mut SimRng) {
        while self.state_until <= t {
            let (next_state, mean) = match self.state {
                BlockageState::LineOfSight => (BlockageState::Blocked, self.config.mean_blocked),
                BlockageState::Blocked => (BlockageState::LineOfSight, self.config.mean_los),
            };
            self.state = next_state;
            let dwell = sim::Dist::Exponential { mean }.sample(rng).max(Duration::from_nanos(1)); // guarantee forward progress
            self.state_until += dwell;
        }
    }

    /// Link state at instant `t` (must be queried with non-decreasing `t`).
    pub fn state_at(&mut self, t: Instant, rng: &mut SimRng) -> BlockageState {
        self.advance_to(t, rng);
        self.state
    }

    /// The first instant at or after `t` at which the link is in LoS —
    /// i.e. how long a packet arriving at `t` must wait for the channel
    /// itself (before any protocol waiting even starts).
    pub fn next_los_at(&mut self, t: Instant, rng: &mut SimRng) -> Instant {
        self.advance_to(t, rng);
        match self.state {
            BlockageState::LineOfSight => t,
            BlockageState::Blocked => {
                let resume = self.state_until;
                self.advance_to(resume, rng);
                resume
            }
        }
    }
}

/// A materialised blockage trajectory supporting queries at *arbitrary*
/// (including non-monotonic) instants.
///
/// [`Fr2Link`] samples its process lazily and therefore requires
/// non-decreasing query times; experiments whose per-packet handling can
/// out-run the next packet's arrival (a long blockage wait followed by an
/// earlier arrival) need random access instead. The trace stores the toggle
/// instants and extends itself on demand, so queries are answered by binary
/// search against one consistent trajectory.
#[derive(Debug, Clone)]
pub struct BlockageTrace {
    config: Fr2LinkConfig,
    /// Toggle instants: the state flips at each entry. Before `toggles[0]`
    /// the link is in LoS.
    toggles: Vec<Instant>,
    rng: SimRng,
}

impl BlockageTrace {
    /// Creates a trace starting in LoS at the epoch.
    pub fn new(config: Fr2LinkConfig, rng: SimRng) -> BlockageTrace {
        BlockageTrace { config, toggles: Vec::new(), rng }
    }

    fn extend_past(&mut self, t: Instant) {
        while self.toggles.last().is_none_or(|&last| last <= t) {
            let idx = self.toggles.len();
            // Even indices end LoS dwells, odd indices end blockages.
            let mean =
                if idx.is_multiple_of(2) { self.config.mean_los } else { self.config.mean_blocked };
            let dwell =
                sim::Dist::Exponential { mean }.sample(&mut self.rng).max(Duration::from_nanos(1));
            let base = self.toggles.last().copied().unwrap_or(Instant::ZERO);
            self.toggles.push(base + dwell);
        }
    }

    /// Link state at `t` (any order of queries).
    pub fn state_at(&mut self, t: Instant) -> BlockageState {
        self.extend_past(t);
        let flips = self.toggles.partition_point(|&x| x <= t);
        if flips % 2 == 0 {
            BlockageState::LineOfSight
        } else {
            BlockageState::Blocked
        }
    }

    /// First instant at or after `t` in LoS.
    pub fn next_los_at(&mut self, t: Instant) -> Instant {
        self.extend_past(t);
        let flips = self.toggles.partition_point(|&x| x <= t);
        if flips % 2 == 0 {
            t
        } else {
            self.toggles[flips]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_fraction_formula() {
        let c = Fr2LinkConfig::busy_indoor();
        let f = c.blocked_fraction();
        assert!((f - 14_000.0 / 14_380.0).abs() < 1e-9);
        assert!(Fr2LinkConfig::clear_static().blocked_fraction() < 0.01);
    }

    #[test]
    fn states_alternate_and_time_moves_forward() {
        let mut rng = SimRng::from_seed(0);
        let mut link = Fr2Link::new(Fr2LinkConfig::busy_indoor(), &mut rng);
        let mut t = Instant::ZERO;
        let mut seen_blocked = false;
        let mut seen_los = false;
        for _ in 0..10_000 {
            t += Duration::from_micros(100);
            match link.state_at(t, &mut rng) {
                BlockageState::Blocked => seen_blocked = true,
                BlockageState::LineOfSight => seen_los = true,
            }
        }
        assert!(seen_blocked && seen_los);
    }

    #[test]
    fn observed_blocked_fraction_matches_config() {
        let cfg = Fr2LinkConfig::busy_indoor();
        let mut rng = SimRng::from_seed(1);
        let mut link = Fr2Link::new(cfg, &mut rng);
        let step = Duration::from_micros(50);
        let mut t = Instant::ZERO;
        let n = 400_000u64;
        let mut blocked = 0u64;
        for _ in 0..n {
            t += step;
            if link.state_at(t, &mut rng) == BlockageState::Blocked {
                blocked += 1;
            }
        }
        let observed = blocked as f64 / n as f64;
        assert!(
            (observed - cfg.blocked_fraction()).abs() < 0.02,
            "observed {observed} vs {}",
            cfg.blocked_fraction()
        );
    }

    #[test]
    fn next_los_is_immediate_in_los() {
        let mut rng = SimRng::from_seed(2);
        let mut link = Fr2Link::new(Fr2LinkConfig::clear_static(), &mut rng);
        // At the epoch the link starts in LoS.
        assert_eq!(link.next_los_at(Instant::ZERO, &mut rng), Instant::ZERO);
    }

    #[test]
    fn next_los_waits_out_blockage() {
        let mut rng = SimRng::from_seed(3);
        let mut link = Fr2Link::new(Fr2LinkConfig::busy_indoor(), &mut rng);
        // Walk until we find a blocked instant, then verify the wait.
        let mut t = Instant::ZERO;
        loop {
            t += Duration::from_micros(100);
            if link.state_at(t, &mut rng) == BlockageState::Blocked {
                break;
            }
            assert!(t < Instant::from_millis(100), "never found a blockage");
        }
        let resume = link.next_los_at(t, &mut rng);
        assert!(resume > t);
        assert_eq!(link.state_at(resume, &mut rng), BlockageState::LineOfSight);
    }

    #[test]
    fn trace_matches_stationary_fraction() {
        let cfg = Fr2LinkConfig::busy_indoor();
        let mut trace = BlockageTrace::new(cfg, SimRng::from_seed(11));
        let step = Duration::from_micros(50);
        let n = 200_000u64;
        let mut blocked = 0u64;
        for i in 0..n {
            if trace.state_at(Instant::ZERO + step * i) == BlockageState::Blocked {
                blocked += 1;
            }
        }
        let observed = blocked as f64 / n as f64;
        assert!((observed - cfg.blocked_fraction()).abs() < 0.03, "observed {observed}");
    }

    #[test]
    fn trace_answers_out_of_order_queries_consistently() {
        let mut trace = BlockageTrace::new(Fr2LinkConfig::busy_indoor(), SimRng::from_seed(12));
        // Prime far into the future, then query earlier instants; answers
        // must be identical to a fresh forward pass with the same seed.
        let mut probe = trace.clone();
        let _ = trace.state_at(Instant::from_millis(500));
        for us in [100u64, 5_000, 90_000, 30, 250_000] {
            let t = Instant::from_micros(us);
            assert_eq!(trace.state_at(t), probe.state_at(t), "at {t:?}");
        }
    }

    #[test]
    fn trace_next_los_is_los() {
        let mut trace = BlockageTrace::new(Fr2LinkConfig::busy_indoor(), SimRng::from_seed(13));
        for ms in [0u64, 3, 17, 90, 41] {
            let t = Instant::from_millis(ms);
            let los = trace.next_los_at(t);
            assert!(los >= t);
            assert_eq!(trace.state_at(los), BlockageState::LineOfSight);
            if los > t {
                assert_eq!(trace.state_at(t), BlockageState::Blocked);
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let mut rng = SimRng::from_seed(9);
            let mut link = Fr2Link::new(Fr2LinkConfig::busy_indoor(), &mut rng);
            let mut t = Instant::ZERO;
            (0..1000)
                .map(|_| {
                    t += Duration::from_micros(73);
                    link.state_at(t, &mut rng) == BlockageState::Blocked
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
