//! FR1 (sub-6 GHz) link model: SNR with shadowing → packet error rate.
//!
//! The PER curve is the standard logistic ("waterfall") approximation of a
//! coded link: below a threshold SNR the block error rate saturates at 1,
//! above it it falls off exponentially. This is the granularity at which
//! the paper treats channel reliability ("the unpredictable nature of the
//! wireless channel, which can lead to packet loss", §6) — individual
//! packet losses that the RLC/HARQ machinery must recover, paying latency.

use serde::{Deserialize, Serialize};
use sim::faults::GeChain;
use sim::SimRng;
use telemetry::Telemetry;

/// Configuration of an FR1 link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fr1LinkConfig {
    /// Mean SNR at the receiver, dB.
    pub mean_snr_db: f64,
    /// Log-normal shadowing standard deviation, dB.
    pub shadowing_std_db: f64,
    /// SNR at which the PER is 50 % for the MCS in use, dB.
    pub waterfall_snr_db: f64,
    /// Steepness of the PER waterfall, dB per decade-ish (larger = sharper).
    pub waterfall_slope: f64,
    /// Error floor (residual PER at arbitrarily high SNR — implementation
    /// losses; keeps reliability numbers honest at the 1e-5 scale).
    pub error_floor: f64,
}

impl Fr1LinkConfig {
    /// A healthy private-5G indoor link: high SNR, mild shadowing, PER in
    /// the 1e-3…1e-4 range before retransmissions.
    pub fn indoor_good() -> Fr1LinkConfig {
        Fr1LinkConfig {
            mean_snr_db: 25.0,
            shadowing_std_db: 3.0,
            waterfall_snr_db: 5.0,
            waterfall_slope: 1.2,
            error_floor: 1e-5,
        }
    }

    /// A cell-edge link: loss is frequent enough that HARQ/RLC latency
    /// matters.
    pub fn cell_edge() -> Fr1LinkConfig {
        Fr1LinkConfig {
            mean_snr_db: 8.0,
            shadowing_std_db: 4.0,
            waterfall_snr_db: 5.0,
            waterfall_slope: 1.2,
            error_floor: 1e-5,
        }
    }

    /// An ideal lossless link (analytical baselines and protocol tests).
    pub fn lossless() -> Fr1LinkConfig {
        Fr1LinkConfig {
            mean_snr_db: 60.0,
            shadowing_std_db: 0.0,
            waterfall_snr_db: 5.0,
            waterfall_slope: 1.2,
            error_floor: 0.0,
        }
    }

    /// Packet error rate at a given instantaneous SNR.
    pub fn per_at_snr(&self, snr_db: f64) -> f64 {
        let x = (snr_db - self.waterfall_snr_db) * self.waterfall_slope;
        let logistic = 1.0 / (1.0 + x.exp());
        (logistic + self.error_floor).min(1.0)
    }
}

/// One packet's loss outcome, split by mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LossSample {
    /// The packet was lost (by either mechanism).
    pub lost: bool,
    /// The burst overlay (alone) caused the loss — `false` when the base
    /// SNR/PER draw already lost the packet.
    pub burst: bool,
}

/// A stateful FR1 link.
///
/// The base loss process is memoryless (per-packet SNR draw); an optional
/// Gilbert–Elliott *burst overlay* ([`Fr1Link::set_burst`]) adds the
/// correlated loss that interference and deep fades produce. The overlay
/// chain carries its own RNG stream, so enabling it never perturbs the
/// base draws — a link with the overlay disabled is byte-identical to one
/// that never had it.
#[derive(Debug, Clone)]
pub struct Fr1Link {
    config: Fr1LinkConfig,
    burst: Option<GeChain>,
    transmissions: u64,
    losses: u64,
    tel: Telemetry,
}

impl Fr1Link {
    /// Creates a link.
    pub fn new(config: Fr1LinkConfig) -> Fr1Link {
        Fr1Link { config, burst: None, transmissions: 0, losses: 0, tel: Telemetry::disabled() }
    }

    /// Attaches a telemetry handle (`channel/*` loss counters).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Installs a Gilbert–Elliott burst-loss overlay.
    pub fn set_burst(&mut self, chain: GeChain) {
        self.burst = Some(chain);
    }

    /// Builder form of [`Fr1Link::set_burst`].
    pub fn with_burst(mut self, chain: GeChain) -> Fr1Link {
        self.set_burst(chain);
        self
    }

    /// The burst overlay, if installed.
    pub fn burst(&self) -> Option<&GeChain> {
        self.burst.as_ref()
    }

    /// The link configuration.
    pub fn config(&self) -> &Fr1LinkConfig {
        &self.config
    }

    /// Draws the instantaneous SNR (mean + Gaussian shadowing in dB).
    pub fn sample_snr_db(&self, rng: &mut SimRng) -> f64 {
        if self.config.shadowing_std_db == 0.0 {
            return self.config.mean_snr_db;
        }
        // Box-Muller from two uniforms (keeps the dependency surface small).
        let u1 = rng.uniform01().max(1e-12);
        let u2 = rng.uniform01();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
        self.config.mean_snr_db + z * self.config.shadowing_std_db
    }

    /// Simulates one packet transmission; returns `true` when the packet is
    /// lost.
    pub fn packet_lost(&mut self, rng: &mut SimRng) -> bool {
        self.sample_loss(rng).lost
    }

    /// Simulates one packet transmission, reporting which mechanism lost
    /// it. The base SNR/PER draw always runs (it consumes `rng` exactly as
    /// [`Fr1Link::packet_lost`] always has); the overlay chain advances on
    /// its own stream afterwards.
    pub fn sample_loss(&mut self, rng: &mut SimRng) -> LossSample {
        self.transmissions += 1;
        let snr = self.sample_snr_db(rng);
        let base_lost = rng.chance(self.config.per_at_snr(snr));
        let burst_lost = match self.burst.as_mut() {
            Some(chain) => chain.step(),
            None => false,
        };
        let lost = base_lost || burst_lost;
        self.tel.count("channel", "pkt", 1);
        if lost {
            self.losses += 1;
            self.tel.count("channel", "pkt_lost", 1);
        }
        LossSample { lost, burst: burst_lost && !base_lost }
    }

    /// Observed loss fraction so far.
    pub fn observed_loss_rate(&self) -> f64 {
        if self.transmissions == 0 {
            0.0
        } else {
            self.losses as f64 / self.transmissions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_curve_is_monotone_decreasing() {
        let c = Fr1LinkConfig::indoor_good();
        let mut prev = 1.1;
        for snr10 in -100..400 {
            let per = c.per_at_snr(snr10 as f64 / 10.0);
            assert!(per <= prev + 1e-12, "PER rose at {}", snr10 as f64 / 10.0);
            assert!((0.0..=1.0).contains(&per));
            prev = per;
        }
    }

    #[test]
    fn per_saturates_at_extremes() {
        let c = Fr1LinkConfig::indoor_good();
        assert!(c.per_at_snr(-30.0) > 0.999);
        assert!(c.per_at_snr(40.0) < 1e-4);
        // High-SNR PER bottoms out at the error floor.
        assert!(c.per_at_snr(60.0) >= c.error_floor);
    }

    #[test]
    fn waterfall_midpoint() {
        let c = Fr1LinkConfig::indoor_good();
        let per = c.per_at_snr(c.waterfall_snr_db);
        assert!((per - 0.5).abs() < 0.01, "PER at waterfall = {per}");
    }

    #[test]
    fn lossless_never_loses() {
        let mut link = Fr1Link::new(Fr1LinkConfig::lossless());
        let mut rng = SimRng::from_seed(0);
        for _ in 0..10_000 {
            assert!(!link.packet_lost(&mut rng));
        }
        assert_eq!(link.observed_loss_rate(), 0.0);
    }

    #[test]
    fn indoor_loss_rate_is_small_but_nonzero() {
        let mut link = Fr1Link::new(Fr1LinkConfig::indoor_good());
        let mut rng = SimRng::from_seed(1);
        for _ in 0..200_000 {
            link.packet_lost(&mut rng);
        }
        let rate = link.observed_loss_rate();
        assert!(rate > 0.0, "expected some loss");
        assert!(rate < 0.01, "indoor link too lossy: {rate}");
    }

    #[test]
    fn cell_edge_lossier_than_indoor() {
        let mut edge = Fr1Link::new(Fr1LinkConfig::cell_edge());
        let mut good = Fr1Link::new(Fr1LinkConfig::indoor_good());
        let mut rng_e = SimRng::from_seed(2);
        let mut rng_g = SimRng::from_seed(2);
        for _ in 0..100_000 {
            edge.packet_lost(&mut rng_e);
            good.packet_lost(&mut rng_g);
        }
        assert!(edge.observed_loss_rate() > 10.0 * good.observed_loss_rate());
    }

    #[test]
    fn burst_overlay_adds_correlated_loss_without_touching_base_draws() {
        use sim::faults::{GeChain, GilbertElliott};
        let params =
            GilbertElliott { p_enter_bad: 0.05, p_exit_bad: 0.3, loss_good: 0.0, loss_bad: 0.9 };
        let master = SimRng::from_seed(4);
        let mut plain = Fr1Link::new(Fr1LinkConfig::indoor_good());
        let mut bursty = Fr1Link::new(Fr1LinkConfig::indoor_good())
            .with_burst(GeChain::new(params, master.stream("burst")));
        let mut rng_p = SimRng::from_seed(4).stream("air");
        let mut rng_b = SimRng::from_seed(4).stream("air");
        let mut base_only = 0u32;
        let mut burst_only = 0u32;
        for _ in 0..50_000 {
            let p = plain.sample_loss(&mut rng_p);
            let b = bursty.sample_loss(&mut rng_b);
            // Overlay draws come from the chain's own stream: the base
            // outcome is identical packet-by-packet.
            assert_eq!(b.lost && !b.burst, p.lost, "base loss perturbed by overlay");
            base_only += u32::from(p.lost);
            burst_only += u32::from(b.burst);
        }
        assert!(
            burst_only > 10 * base_only.max(1),
            "overlay dominated: {burst_only} vs {base_only}"
        );
        let expected = params.mean_loss();
        let observed = burst_only as f64 / 50_000.0;
        assert!(
            (observed - expected).abs() < 0.02,
            "burst loss {observed:.3} vs stationary {expected:.3}"
        );
    }

    #[test]
    fn lossless_link_with_burst_loses_only_bursts() {
        use sim::faults::{GeChain, GilbertElliott};
        let params =
            GilbertElliott { p_enter_bad: 0.1, p_exit_bad: 0.4, loss_good: 0.0, loss_bad: 1.0 };
        let master = SimRng::from_seed(5);
        let mut link = Fr1Link::new(Fr1LinkConfig::lossless())
            .with_burst(GeChain::new(params, master.stream("burst")));
        let mut rng = SimRng::from_seed(5);
        let mut losses = 0u32;
        for _ in 0..10_000 {
            let s = link.sample_loss(&mut rng);
            assert_eq!(s.lost, s.burst, "lossless base cannot lose packets");
            losses += u32::from(s.lost);
        }
        assert!(losses > 500, "burst overlay should fire: {losses}");
        assert!(link.observed_loss_rate() > 0.0);
    }

    #[test]
    fn shadowing_spreads_snr() {
        let link = Fr1Link::new(Fr1LinkConfig::indoor_good());
        let mut rng = SimRng::from_seed(3);
        let mut st = sim::StreamingStats::new();
        for _ in 0..50_000 {
            st.push(link.sample_snr_db(&mut rng));
        }
        assert!((st.mean() - 25.0).abs() < 0.1);
        assert!((st.std() - 3.0).abs() < 0.1);
    }
}
