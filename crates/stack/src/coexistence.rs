//! URLLC/eMBB coexistence — the research direction the paper's §1 notes
//! ("many research papers assume the availability of URLLC and focus on
//! the coexistence of it alongside other services, e.g. eMBB"), as an
//! experiment on this stack.
//!
//! Background eMBB traffic keeps the downlink slots busy. Two policies for
//! the URLLC packets that arrive on top:
//!
//! * **Queue** — URLLC competes for the capacity eMBB leaves over; as the
//!   eMBB load grows, URLLC packets spill into later and later slots.
//! * **Preempt** — URLLC punctures the eMBB allocation (the mini-slot
//!   preemption of the coexistence literature): its latency stays flat,
//!   and the cost appears as erased eMBB bytes instead.

use ran::sched::{AccessMode, Scheduler, SchedulerConfig};
use serde::Serialize;
use sim::{Dist, Duration, EventQueue, Instant, LatencyRecorder, SimRng};

use crate::config::StackConfig;

/// How URLLC shares the downlink with eMBB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CoexistencePolicy {
    /// URLLC waits for capacity eMBB has not taken.
    Queue,
    /// URLLC punctures eMBB allocations (always gets the next DL slot).
    Preempt,
}

/// One point of the coexistence sweep.
#[derive(Debug, Clone, Serialize)]
pub struct CoexistencePoint {
    /// Fraction of each DL slot's capacity consumed by eMBB.
    pub embb_load: f64,
    /// Sharing policy.
    pub policy: CoexistencePolicy,
    /// URLLC downlink latency (RLC enqueue → transmission end).
    pub latency: LatencyRecorder,
    /// eMBB bytes erased by preemption (0 under `Queue`).
    pub embb_bytes_lost: u64,
}

/// Sweeps eMBB load for one policy: `packets` URLLC downlink packets with
/// Poisson arrivals share the cell with a constant eMBB backlog.
pub fn coexistence_sweep(
    policy: CoexistencePolicy,
    loads: &[f64],
    packets: u64,
    seed: u64,
) -> Vec<CoexistencePoint> {
    let base = StackConfig::testbed_dddu(AccessMode::GrantFree, true);
    loads
        .iter()
        .map(|&load| {
            assert!((0.0..=1.0).contains(&load), "load is a fraction");
            let full_capacity = base.slot_capacity_bytes();
            let urllc_bytes = base.grant_bytes();
            let capacity = match policy {
                // eMBB consumes its share of every slot before URLLC asks.
                CoexistencePolicy::Queue => {
                    let left = ((full_capacity as f64) * (1.0 - load)) as usize;
                    assert!(
                        left >= urllc_bytes,
                        "eMBB load {load} leaves {left} B — below one URLLC packet; \
                         the Queue policy cannot serve it at all (use Preempt)"
                    );
                    left
                }
                CoexistencePolicy::Preempt => full_capacity,
            };
            let mut sched = Scheduler::new(SchedulerConfig {
                dl_slot_capacity: capacity,
                ..SchedulerConfig::ideal(base.duplex.clone(), AccessMode::GrantFree)
            });
            // Pre-schedule the Poisson arrivals on an event queue (the
            // scheduler itself draws no RNG, so sampling them all up front
            // leaves the draw sequence unchanged), then drain in fire
            // order like every other experiment in this crate.
            let mut rng = SimRng::from_seed(seed).stream("coexistence");
            let inter = Dist::Exponential { mean: Duration::from_millis(2) };
            let mut arrivals = EventQueue::new();
            let mut t = Instant::ZERO;
            for _ in 0..packets {
                t += inter.sample(&mut rng);
                arrivals.push(t, ());
            }
            let mut latency = LatencyRecorder::new();
            let mut embb_bytes_lost = 0u64;
            let mut last_boundary = 0u64;
            while let Some((t, ())) = arrivals.pop() {
                sched.on_dl_data(1, urllc_bytes, t);
                let boundary = (base.duplex.slot_index_at(t) + 1).max(last_boundary);
                last_boundary = boundary;
                let decision = sched.run_slot(boundary);
                for a in decision.dl_assignments {
                    latency.record(a.dl.tx_start + base.data_air_time(urllc_bytes) - t);
                    if policy == CoexistencePolicy::Preempt {
                        // Puncturing erases eMBB bytes only when the slot's
                        // free share cannot absorb the URLLC data.
                        let free = full_capacity - ((full_capacity as f64) * load) as usize;
                        embb_bytes_lost += urllc_bytes.saturating_sub(free) as u64;
                    }
                }
            }
            CoexistencePoint { embb_load: load, policy, latency, embb_bytes_lost }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(p: &CoexistencePoint) -> f64 {
        let mut rec = p.latency.clone();
        rec.summary().mean_us
    }

    #[test]
    fn queue_latency_grows_with_embb_load() {
        // At 85 % load a DDDU slot fits ~one URLLC packet; arrivals every
        // 2 ms against ~1 serviceable packet per 0.5 ms slot group start
        // spilling across slots.
        let pts = coexistence_sweep(CoexistencePolicy::Queue, &[0.0, 0.5, 0.85], 500, 1);
        let means: Vec<f64> = pts.iter().map(mean).collect();
        assert!(means[1] >= means[0] * 0.9, "{means:?}"); // 50 % load: still fits
        assert!(means[2] > 1.2 * means[0], "heavy load must queue: {means:?}");
        assert!(pts.iter().all(|p| p.embb_bytes_lost == 0));
    }

    #[test]
    #[should_panic(expected = "cannot serve")]
    fn queue_policy_rejects_saturating_load() {
        coexistence_sweep(CoexistencePolicy::Queue, &[0.99], 10, 1);
    }

    #[test]
    fn preemption_keeps_urllc_flat_and_charges_embb() {
        let pts = coexistence_sweep(CoexistencePolicy::Preempt, &[0.0, 0.5, 0.99], 500, 2);
        let means: Vec<f64> = pts.iter().map(mean).collect();
        assert!(
            (means[2] - means[0]).abs() < 0.05 * means[0],
            "preemptive latency should be load-independent: {means:?}"
        );
        // At ≤ 50 % load the free share absorbs the packet: nothing erased.
        assert_eq!(pts[0].embb_bytes_lost, 0);
        assert_eq!(pts[1].embb_bytes_lost, 0);
        // At 99 % load nearly every URLLC byte punctures eMBB.
        assert!(pts[2].embb_bytes_lost > 0);
    }

    #[test]
    fn policies_agree_when_cell_is_idle() {
        let q = &coexistence_sweep(CoexistencePolicy::Queue, &[0.0], 300, 3)[0];
        let p = &coexistence_sweep(CoexistencePolicy::Preempt, &[0.0], 300, 3)[0];
        assert!((mean(q) - mean(p)).abs() < 1e-9);
    }

    #[test]
    fn all_packets_served() {
        for policy in [CoexistencePolicy::Queue, CoexistencePolicy::Preempt] {
            let pts = coexistence_sweep(policy, &[0.7], 400, 4);
            assert_eq!(pts[0].latency.count(), 400, "{policy:?}");
        }
    }
}
