//! URLLC/eMBB coexistence — the research direction the paper's §1 notes
//! ("many research papers assume the availability of URLLC and focus on
//! the coexistence of it alongside other services, e.g. eMBB"), as an
//! experiment on this stack.
//!
//! Background eMBB traffic keeps the downlink slots busy. Two arms for the
//! URLLC packets that arrive on top, both expressed as ordinary
//! [`ran::sched`] scheduling policies (there is no bespoke coexistence
//! fork in the simulation loop):
//!
//! * **Queue** ([`PolicySpec::Fcfs`] over the capacity eMBB leaves) —
//!   URLLC competes for the residual capacity; as the eMBB load grows,
//!   URLLC packets spill into later and later slots.
//! * **Preempt** ([`PolicySpec::PreemptivePriority`] with the eMBB share
//!   as the standing downlink background) — URLLC punctures the eMBB
//!   allocation (the mini-slot preemption of the coexistence literature):
//!   its latency stays flat, and the cost appears as erased eMBB bytes,
//!   read back from [`Scheduler::punctured_bytes`].

use ran::sched::{AccessMode, PolicySpec, Scheduler, SchedulerConfig};
use serde::Serialize;
use sim::{Dist, Duration, EventQueue, Instant, LatencyRecorder, SimRng};

use crate::config::StackConfig;

/// One point of the coexistence sweep.
#[derive(Debug, Clone, Serialize)]
pub struct CoexistencePoint {
    /// Fraction of each DL slot's capacity consumed by eMBB.
    pub embb_load: f64,
    /// The scheduling policy that served URLLC at this point.
    pub policy: PolicySpec,
    /// URLLC downlink latency (RLC enqueue → transmission end).
    pub latency: LatencyRecorder,
    /// eMBB bytes erased by preemption (0 under the queueing arm).
    pub embb_bytes_lost: u64,
}

/// Sweeps eMBB load for one arm: `packets` URLLC downlink packets with
/// Poisson arrivals share the cell with a constant eMBB backlog. With
/// `preempt` false URLLC queues behind eMBB (FCFS over the leftover
/// capacity); with `preempt` true it punctures the eMBB allocation.
pub fn coexistence_sweep(
    preempt: bool,
    loads: &[f64],
    packets: u64,
    seed: u64,
) -> Vec<CoexistencePoint> {
    let base = StackConfig::testbed_dddu(AccessMode::GrantFree, true);
    loads
        .iter()
        .map(|&load| {
            assert!((0.0..=1.0).contains(&load), "load is a fraction");
            let full_capacity = base.slot_capacity_bytes();
            let urllc_bytes = base.grant_bytes();
            let (policy, capacity) = if preempt {
                // eMBB virtually occupies its share of every DL slot;
                // priority-0 URLLC punctures through it and the scheduler
                // bills the erased bytes.
                let background = ((full_capacity as f64) * load) as usize;
                (PolicySpec::PreemptivePriority { dl_background: background }, full_capacity)
            } else {
                // eMBB consumes its share of every slot before URLLC asks.
                let left = ((full_capacity as f64) * (1.0 - load)) as usize;
                assert!(
                    left >= urllc_bytes,
                    "eMBB load {load} leaves {left} B — below one URLLC packet; \
                     the Queue policy cannot serve it at all (use Preempt)"
                );
                (PolicySpec::Fcfs, left)
            };
            let mut sched = Scheduler::new(SchedulerConfig {
                dl_slot_capacity: capacity,
                policy: policy.build(),
                ..SchedulerConfig::ideal(base.duplex.clone(), AccessMode::GrantFree)
            });
            // Pre-schedule the Poisson arrivals on an event queue (the
            // scheduler itself draws no RNG, so sampling them all up front
            // leaves the draw sequence unchanged), then drain in fire
            // order like every other experiment in this crate.
            let mut rng = SimRng::from_seed(seed).stream("coexistence");
            let inter = Dist::Exponential { mean: Duration::from_millis(2) };
            let mut arrivals = EventQueue::new();
            let mut t = Instant::ZERO;
            for _ in 0..packets {
                t += inter.sample(&mut rng);
                arrivals.push(t, ());
            }
            let mut latency = LatencyRecorder::new();
            let mut last_boundary = 0u64;
            while let Some((t, ())) = arrivals.pop() {
                sched.on_dl_data(1, urllc_bytes, t);
                let boundary = (base.duplex.slot_index_at(t) + 1).max(last_boundary);
                last_boundary = boundary;
                let decision = sched.run_slot(boundary);
                for a in decision.dl_assignments {
                    latency.record(a.dl.tx_start + base.data_air_time(urllc_bytes) - t);
                }
            }
            CoexistencePoint {
                embb_load: load,
                policy,
                latency,
                embb_bytes_lost: sched.punctured_bytes(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(p: &CoexistencePoint) -> f64 {
        let mut rec = p.latency.clone();
        rec.summary().mean_us
    }

    #[test]
    fn queue_latency_grows_with_embb_load() {
        // At 85 % load a DDDU slot fits ~one URLLC packet; arrivals every
        // 2 ms against ~1 serviceable packet per 0.5 ms slot group start
        // spilling across slots.
        let pts = coexistence_sweep(false, &[0.0, 0.5, 0.85], 500, 1);
        let means: Vec<f64> = pts.iter().map(mean).collect();
        assert!(means[1] >= means[0] * 0.9, "{means:?}"); // 50 % load: still fits
        assert!(means[2] > 1.2 * means[0], "heavy load must queue: {means:?}");
        assert!(pts.iter().all(|p| p.embb_bytes_lost == 0));
        assert!(pts.iter().all(|p| p.policy == PolicySpec::Fcfs));
    }

    #[test]
    #[should_panic(expected = "cannot serve")]
    fn queue_policy_rejects_saturating_load() {
        coexistence_sweep(false, &[0.99], 10, 1);
    }

    #[test]
    fn preemption_keeps_urllc_flat_and_charges_embb() {
        let pts = coexistence_sweep(true, &[0.0, 0.5, 0.99], 500, 2);
        let means: Vec<f64> = pts.iter().map(mean).collect();
        assert!(
            (means[2] - means[0]).abs() < 0.05 * means[0],
            "preemptive latency should be load-independent: {means:?}"
        );
        // At ≤ 50 % load the free share absorbs the packet: nothing erased.
        assert_eq!(pts[0].embb_bytes_lost, 0);
        assert_eq!(pts[1].embb_bytes_lost, 0);
        // At 99 % load nearly every URLLC byte punctures eMBB.
        assert!(pts[2].embb_bytes_lost > 0);
    }

    #[test]
    fn preemption_charge_matches_per_packet_formula() {
        // Every packet punctures independently, so the scheduler's ledger
        // must equal the closed-form per-packet charge: the URLLC bytes
        // that do not fit in the slot's free share.
        let base = StackConfig::testbed_dddu(AccessMode::GrantFree, true);
        let full = base.slot_capacity_bytes();
        let urllc = base.grant_bytes();
        let load = 0.9;
        let free = full - ((full as f64) * load) as usize;
        let pts = coexistence_sweep(true, &[load], 200, 7);
        assert_eq!(pts[0].latency.count(), 200);
        assert_eq!(pts[0].embb_bytes_lost, 200 * urllc.saturating_sub(free) as u64);
    }

    #[test]
    fn policies_agree_when_cell_is_idle() {
        let q = &coexistence_sweep(false, &[0.0], 300, 3)[0];
        let p = &coexistence_sweep(true, &[0.0], 300, 3)[0];
        assert!((mean(q) - mean(p)).abs() < 1e-9);
    }

    #[test]
    fn all_packets_served() {
        for preempt in [false, true] {
            let pts = coexistence_sweep(preempt, &[0.7], 400, 4);
            assert_eq!(pts[0].latency.count(), 400, "preempt={preempt}");
        }
    }
}
