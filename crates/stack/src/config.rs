//! System configuration: every design choice of the paper's §5 in one
//! struct.

use corenet::BackboneLink;
use phy::duplex::Duplex;
use phy::grid::CarrierConfig;
use phy::modulation::Modulation;
use phy::tdd::TddConfig;
use radio::RadioHeadConfig;
use ran::sched::{AccessMode, PolicySpec, SchedulerConfig};
use ran::timing::LayerTimings;
use serde::{Deserialize, Serialize};
use sim::Duration;

/// When the gNB MAC pulls a scheduled downlink reply from the RLC queue —
/// the instant that ends Table 2's "RLC-q" interval and starts transport-
/// block construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DlPullPoint {
    /// The slot worker that makes the scheduling decision immediately
    /// builds the transport block (srsRAN's one-worker pipeline: decide,
    /// pull, build in the same slot task). This reproduces the paper's
    /// ≈ 484 µs RLC-q row — the queue wait is just the wait for the next
    /// scheduling boundary.
    AtDecision,
    /// Just-in-time: defer the pull until `slots` slots before the
    /// assigned air time (never before the decision itself). Keeps the TB
    /// maximally fresh but extends the measured queue wait whenever the
    /// air slot is more than `slots` slots past the decision — the
    /// seed's `SlotsBeforeAir(2)` overshot the paper's RLC-q by ~400 µs.
    SlotsBeforeAir(u64),
}

/// Full-system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackConfig {
    /// Duplexing scheme and slot pattern.
    pub duplex: Duplex,
    /// Uplink access mode.
    pub access: AccessMode,
    /// Carrier dimensions for transport-block sizing.
    pub carrier: CarrierConfig,
    /// Modulation for data channels.
    pub modulation: Modulation,
    /// Effective code rate for data channels.
    pub code_rate: f64,
    /// PRBs allocated per data transmission.
    pub data_prbs: u32,
    /// gNB per-layer processing-time models.
    pub gnb_timings: LayerTimings,
    /// UE per-layer processing-time models.
    pub ue_timings: LayerTimings,
    /// gNB radio head.
    pub gnb_radio: RadioHeadConfig,
    /// UE radio head (modem RF front end).
    pub ue_radio: RadioHeadConfig,
    /// N3/N6 transport to the UPF and data network.
    pub backbone: BackboneLink,
    /// Scheduling-decision lead (radio readiness margin, §4/§7).
    pub sched_lead: Duration,
    /// gNB DL pull point: when the MAC dequeues a scheduled reply from the
    /// RLC queue and starts building its transport block.
    pub dl_pull: DlPullPoint,
    /// UE grant-decode-to-transmit time assumed by the scheduler.
    pub ue_grant_processing: Duration,
    /// Ping payload size in bytes (ICMP echo, 64 B default).
    pub payload_bytes: usize,
    /// Wireless channel model. `None` = lossless air (the default: the
    /// paper's latency experiments assume a healthy link; §6 treats loss
    /// separately).
    pub link: Option<channel::Fr1LinkConfig>,
    /// Maximum HARQ transmissions per transport block when `link` is set
    /// (each retransmission costs one HARQ round trip — §8's "+0.5 ms
    /// steps").
    pub harq_max_tx: u32,
    /// RLC AM retransmission budget (`maxRetxThreshold`): how many times
    /// the AM layer re-runs a full HARQ cycle for a transport block whose
    /// HARQ budget was exhausted, before declaring radio link failure.
    pub rlc_max_retx: u32,
    /// UE scheduling-request procedure configuration (prohibit timer and
    /// `sr-TransMax`; exhaustion falls back to RACH).
    pub sr: ran::sr::SrConfig,
    /// Random-access configuration for the SR-exhaustion fallback path.
    pub rach: ran::RachConfig,
    /// RRC re-establishment policy: what happens after a radio-link
    /// failure instead of dropping the packet.
    pub rrc: ran::RrcConfig,
    /// Inter-cell handover policy: A3 trigger, Xn preparation delays, and
    /// the T304 supervision timer (used by the mobility experiment).
    pub handover: ran::HandoverConfig,
    /// GTP-U path-supervision policy on the N3 backbone (echo keepalive,
    /// retry/backoff, failover).
    pub supervision: corenet::SupervisionConfig,
    /// Backup N3 path used when supervision declares the primary down.
    /// `None` means no failover: path outages stall on the primary.
    pub backup_backbone: Option<BackboneLink>,
    /// End-to-end RTT deadline used to classify each ping as on-time or
    /// late in the fault-attribution report.
    pub deadline: Duration,
    /// Fault-injection plan. The default ([`sim::FaultPlan::none`]) injects
    /// nothing and reproduces the fault-free traces byte for byte.
    pub faults: sim::FaultPlan,
    /// MAC scheduling policy ([`PolicySpec::Fcfs`] reproduces the
    /// pre-policy scheduler byte for byte).
    pub policy: PolicySpec,
    /// Master random seed.
    pub seed: u64,
}

impl StackConfig {
    /// The paper's §7 testbed: n78-band DDDU at µ1 (0.5 ms slots), modified
    /// srsRAN on an i7 (Table 2 timings), USRP B210 over USB, SIM8200 UE
    /// modem, UPF co-located.
    ///
    /// The scheduling lead is two slots: srsRAN builds each slot's
    /// transport block one slot ahead, and §7 adds that "the transmission
    /// must be always delayed for one slot to give enough time to the RH"
    /// — so the decision-to-air pipeline spans two slots (1 ms).
    pub fn testbed_dddu(access: AccessMode, usb3: bool) -> StackConfig {
        let duplex = Duplex::Tdd(TddConfig::dddu_testbed());
        StackConfig {
            sched_lead: duplex.slot_duration() * 2,
            dl_pull: DlPullPoint::AtDecision,
            duplex,
            access,
            carrier: CarrierConfig::testbed_20mhz(),
            modulation: Modulation::Qpsk,
            code_rate: 0.5,
            data_prbs: 51,
            gnb_timings: LayerTimings::gnb_table2(),
            ue_timings: LayerTimings::ue_modem(),
            gnb_radio: RadioHeadConfig::usrp_b210(usb3),
            ue_radio: RadioHeadConfig::asic_integrated(), // the modem's RF is integrated silicon
            backbone: BackboneLink::colocated_edge(),
            ue_grant_processing: Duration::from_micros(600),
            payload_bytes: 64,
            link: None,
            harq_max_tx: 4,
            rlc_max_retx: 4,
            sr: ran::sr::SrConfig::default(),
            rach: ran::RachConfig::default(),
            rrc: ran::RrcConfig::default(),
            handover: ran::HandoverConfig::default(),
            supervision: corenet::SupervisionConfig::edge(),
            // A second co-located link: failover costs detection, not
            // distance.
            backup_backbone: Some(BackboneLink::colocated_edge()),
            // Four pattern periods of headroom over the Fig 6 medians.
            deadline: Duration::from_millis(8),
            faults: sim::FaultPlan::none(),
            policy: PolicySpec::Fcfs,
            // Arbitrary default; overridden per experiment via `with_seed`.
            seed: 0x5612_3458,
        }
    }

    /// The §5 feasible URLLC design: DM pattern at µ2 (0.25 ms slots),
    /// grant-free uplink, low-latency PCIe radio with an RT kernel, and
    /// hardware-accelerated L1 processing.
    ///
    /// The scheduling lead is 150 µs — enough for MAC+PHY preparation plus
    /// the PCIe radio (§5's criterion: radio + processing under one slot),
    /// because a zero lead would corrupt every slot (§4: "failure to do so
    /// may result in the radio not being ready for transmission").
    pub fn ideal_urllc_dm() -> StackConfig {
        let duplex = Duplex::Tdd(TddConfig::dm_minimal());
        let accel = LayerTimings {
            sdap: sim::Dist::lognormal_us(2.0, 1.0),
            pdcp: sim::Dist::lognormal_us(3.0, 1.5),
            rlc: sim::Dist::lognormal_us(2.0, 1.0),
            mac: sim::Dist::lognormal_us(12.0, 3.0),
            phy: sim::Dist::lognormal_us(15.0, 4.0),
        };
        StackConfig {
            duplex,
            access: AccessMode::GrantFree,
            carrier: CarrierConfig::testbed_20mhz(),
            modulation: Modulation::Qam16,
            code_rate: 0.5,
            data_prbs: 51,
            gnb_timings: accel.clone(),
            ue_timings: accel, // an equally capable UE
            gnb_radio: RadioHeadConfig::pcie_low_latency(),
            ue_radio: RadioHeadConfig::asic_integrated(),
            backbone: BackboneLink::ideal(),
            sched_lead: Duration::from_micros(150),
            dl_pull: DlPullPoint::AtDecision,
            ue_grant_processing: Duration::from_micros(100),
            payload_bytes: 64,
            link: None,
            harq_max_tx: 4,
            rlc_max_retx: 4,
            sr: ran::sr::SrConfig::default(),
            rach: ran::RachConfig::default(),
            rrc: ran::RrcConfig::default(),
            handover: ran::HandoverConfig::default(),
            supervision: corenet::SupervisionConfig::edge(),
            backup_backbone: Some(BackboneLink::ideal()),
            deadline: Duration::from_millis(1),
            faults: sim::FaultPlan::none(),
            policy: PolicySpec::Fcfs,
            seed: 7,
        }
    }

    /// Derives the scheduler configuration. Control (DCI) transmissions
    /// get at most one slot of lead — they ride the control region the gNB
    /// builds every slot anyway.
    pub fn scheduler_config(&self) -> SchedulerConfig {
        SchedulerConfig {
            duplex: self.duplex.clone(),
            access: self.access,
            lead: self.sched_lead,
            control_lead: self.sched_lead.min(self.duplex.slot_duration()),
            ue_grant_processing: self.ue_grant_processing,
            dl_slot_capacity: self.slot_capacity_bytes(),
            ul_slot_capacity: self.slot_capacity_bytes(),
            grant_bytes: self.grant_bytes(),
            policy: self.policy.build(),
        }
    }

    /// With a different scheduling policy (for the scheduler laboratory).
    pub fn with_policy(mut self, policy: PolicySpec) -> StackConfig {
        self.policy = policy;
        self
    }

    /// Bytes a full slot can carry at the configured MCS.
    pub fn slot_capacity_bytes(&self) -> usize {
        (self.carrier.transport_block_bits(
            self.data_prbs,
            phy::numerology::SYMBOLS_PER_SLOT,
            self.modulation,
            self.code_rate,
        ) / 8) as usize
    }

    /// Grant size used for granted uplink transmissions: generous enough
    /// for a ping plus all layer overheads.
    pub fn grant_bytes(&self) -> usize {
        (self.payload_bytes + 64).min(self.slot_capacity_bytes())
    }

    /// Air-time of a `bytes`-byte transport block: whole OFDM symbols at
    /// the configured MCS and PRB allocation.
    pub fn data_air_time(&self, bytes: usize) -> Duration {
        let nu = self.duplex.numerology();
        let per_symbol_bits = self.carrier.res_per_prb(phy::numerology::SYMBOLS_PER_SLOT) as f64
            / f64::from(phy::numerology::SYMBOLS_PER_SLOT - self.carrier.overhead_symbols)
            * self.data_prbs as f64
            * f64::from(self.modulation.bits_per_symbol())
            * self.code_rate;
        let bits = (bytes * 8) as f64;
        let symbols = (bits / per_symbol_bits).ceil().max(1.0) as u32;
        let symbols = symbols.min(phy::numerology::SYMBOLS_PER_SLOT);
        nu.symbol_offset(symbols)
    }

    /// With a different seed (for multi-run experiments).
    pub fn with_seed(mut self, seed: u64) -> StackConfig {
        self.seed = seed;
        self
    }

    /// With a fault-injection plan (chaos experiments).
    pub fn with_faults(mut self, faults: sim::FaultPlan) -> StackConfig {
        self.faults = faults;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_preset_matches_paper_section7() {
        let c = StackConfig::testbed_dddu(AccessMode::GrantBased, true);
        assert_eq!(c.duplex.slot_duration(), Duration::from_micros(500));
        assert_eq!(c.duplex.pattern_period(), Duration::from_millis(2));
        assert_eq!(c.sched_lead, Duration::from_millis(1));
        assert_eq!(c.payload_bytes, 64);
    }

    #[test]
    fn ideal_preset_is_dm_grant_free() {
        let c = StackConfig::ideal_urllc_dm();
        assert_eq!(c.access, AccessMode::GrantFree);
        assert_eq!(c.duplex.pattern_period(), Duration::from_micros(500));
        assert_eq!(c.sched_lead, Duration::from_micros(150));
    }

    #[test]
    fn slot_capacity_positive_and_scales() {
        let c = StackConfig::testbed_dddu(AccessMode::GrantFree, true);
        let cap = c.slot_capacity_bytes();
        assert!(cap > 500, "capacity {cap}");
        assert!(c.grant_bytes() <= cap);
    }

    #[test]
    fn air_time_scales_with_bytes_and_floors_at_one_symbol() {
        let c = StackConfig::testbed_dddu(AccessMode::GrantFree, true);
        let one = c.data_air_time(1);
        assert_eq!(one, c.duplex.numerology().symbol_offset(1));
        let big = c.data_air_time(c.slot_capacity_bytes());
        assert!(big > one);
        assert!(big <= c.duplex.slot_duration());
    }

    #[test]
    fn presets_pull_at_the_decision() {
        // Both presets use srsRAN's pull point; the deferred variant is an
        // opt-in for pipeline studies.
        assert_eq!(
            StackConfig::testbed_dddu(AccessMode::GrantBased, true).dl_pull,
            DlPullPoint::AtDecision
        );
        assert_eq!(StackConfig::ideal_urllc_dm().dl_pull, DlPullPoint::AtDecision);
    }

    #[test]
    fn scheduler_config_is_consistent() {
        let c = StackConfig::testbed_dddu(AccessMode::GrantBased, false);
        let s = c.scheduler_config();
        assert_eq!(s.lead, c.sched_lead);
        assert_eq!(s.access, AccessMode::GrantBased);
        assert_eq!(s.dl_slot_capacity, c.slot_capacity_bytes());
    }
}
