//! Overload robustness: open-loop arrival injection, bounded per-layer
//! buffers with typed drop attribution, and SLO-driven graceful
//! degradation.
//!
//! The closed-loop [`crate::experiment`] walk sends one ping at a time, so
//! queues can never form and offered load is bounded by the service rate
//! by construction. This module is the open-loop counterpart: a
//! [`sim::ArrivalGen`] injects packets onto a shared [`sim::EventQueue`]
//! independent of completions, real RAN entities (PDCP with a TS 38.323
//! discardTimer, capped RLC UM buffers, a bounded MAC/HARQ backlog) absorb
//! the backlog, and every packet ends in exactly one of three ledgers —
//! delivered, dropped-with-reason, or in flight at drain — so conservation
//! is checkable.
//!
//! Degradation is driven through the [`SloHook`] trait: the engine reports
//! every URLLC outcome (delivery with its deadline verdict, or a drop) and
//! reads back a [`DegradationLevel`] each slot. `core::slo` provides the
//! hysteresis supervisor; [`NullHook`] keeps the engine un-governed for
//! baselines. The degradation actions, in escalation order:
//!
//! * **Degraded** — shed best-effort (eMBB) traffic at ingress and tighten
//!   the DL pull point to one slot of data, keeping the standing queue in
//!   PDCP where the discardTimer bounds every packet's lifetime.
//! * **Critical** — additionally clamp HARQ: a backlogged transport block
//!   whose every packet has already missed its deadline is discarded
//!   instead of retransmitted, so the air interface serves packets that
//!   can still make it.

use std::collections::VecDeque;

use bytes::Bytes;
use ran::mac::MacBacklog;
use ran::pdcp::{Direction, PdcpConfig, PdcpEntity};
use ran::rlc::{RlcError, RlcUmEntity};
use ran::sched::{PolicySpec, RequestTag, SchedItem, SchedulingPolicy, Slice};
use sim::{ArrivalGen, ArrivalProcess, Duration, EventQueue, Instant, Recording, SimRng};
use telemetry::{JournalEvent, Profiler, Telemetry};

use crate::config::StackConfig;

/// Why a packet was dropped — the typed taxonomy behind the journal's
/// `Drop` events and the overload CSV's per-reason columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// PDCP discardTimer expiry (TS 38.323 §5.5): the SDU aged out before
    /// a lower-layer pull, leaving an SN gap.
    PdcpDiscard,
    /// RLC transmission buffer at capacity: tail drop at ingress.
    RlcFull,
    /// The bounded HARQ/MAC backlog was full when a failed transport block
    /// needed requeueing.
    MacBacklogFull,
    /// A transport block exhausted `harq_max_tx` transmissions.
    HarqExhausted,
    /// Critical-level degradation discarded a backlogged transport block
    /// whose packets had all already missed their deadline.
    DeadlineClamp,
    /// Degraded-level ingress shedding of best-effort (eMBB) traffic.
    SloShed,
}

impl DropReason {
    /// Every reason, in CSV column order.
    pub const ALL: [DropReason; 6] = [
        DropReason::PdcpDiscard,
        DropReason::RlcFull,
        DropReason::MacBacklogFull,
        DropReason::HarqExhausted,
        DropReason::DeadlineClamp,
        DropReason::SloShed,
    ];

    /// Stable short label (journal events, CSV headers).
    pub fn label(self) -> &'static str {
        match self {
            DropReason::PdcpDiscard => "pdcp-discard",
            DropReason::RlcFull => "rlc-full",
            DropReason::MacBacklogFull => "mac-backlog-full",
            DropReason::HarqExhausted => "harq-exhausted",
            DropReason::DeadlineClamp => "deadline-clamp",
            DropReason::SloShed => "slo-shed",
        }
    }
}

/// Per-reason drop counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropCounts([u64; DropReason::ALL.len()]);

impl DropCounts {
    fn add(&mut self, reason: DropReason) {
        self.0[reason as usize] += 1;
    }

    /// Drops recorded for `reason`.
    pub fn get(&self, reason: DropReason) -> u64 {
        self.0[reason as usize]
    }

    /// Total drops across every reason.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }
}

/// How aggressively the stack is currently shedding load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationLevel {
    /// Full service.
    Normal,
    /// Shed best-effort traffic, tighten the DL pull point.
    Degraded,
    /// Additionally clamp HARQ retransmissions of already-late blocks.
    Critical,
}

/// The stack-side SLO interface: the engine reports every URLLC outcome
/// and reads back the degradation level each slot. Implemented by
/// `core::slo::SloSupervisor`; the dependency points this way because the
/// `core` crate sits above `stack` in the workspace graph.
pub trait SloHook {
    /// One URLLC packet resolved at `at`; `miss` is true when it was
    /// dropped or delivered past its deadline.
    fn observe(&mut self, at: Instant, miss: bool);

    /// Current degradation level (sampled at each slot boundary).
    fn level(&self) -> DegradationLevel;
}

/// A hook that never degrades — the un-governed baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullHook;

impl SloHook for NullHook {
    fn observe(&mut self, _at: Instant, _miss: bool) {}

    fn level(&self) -> DegradationLevel {
        DegradationLevel::Normal
    }
}

/// Open-loop overload experiment configuration.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// The underlying stack (duplex pattern, MCS, payload size).
    pub stack: StackConfig,
    /// URLLC (foreground) arrival process.
    pub arrivals: ArrivalProcess,
    /// Optional best-effort background: arrival process and SDU bytes.
    pub embb: Option<(ArrivalProcess, usize)>,
    /// Arrival horizon: packets arrive on `[0, horizon)`; the engine then
    /// drains.
    pub horizon: Duration,
    /// One-way downlink deadline classifying each delivery as on-time or
    /// late (the closed-loop `stack.deadline` is a round-trip budget).
    pub deadline: Duration,
    /// PDCP discardTimer. `None` disables expiry, so the PDCP queue is
    /// unbounded — useful only to demonstrate the latency cliff it causes.
    pub discard_timer: Option<Duration>,
    /// URLLC RLC transmission-buffer cap in bytes.
    pub rlc_capacity_bytes: usize,
    /// eMBB RLC transmission-buffer cap in bytes.
    pub embb_capacity_bytes: usize,
    /// Bounded HARQ retransmission backlog, in transport blocks.
    pub harq_backlog_cap: usize,
    /// Per-transmission transport-block error rate.
    pub bler: f64,
    /// Scheduling policy ordering the per-slot service of the URLLC and
    /// eMBB traffic classes (HARQ retransmissions always go first — they
    /// are the oldest data). `Fcfs` and the priority policies reproduce
    /// the historic URLLC-before-eMBB order byte for byte; `RoundRobin`
    /// genuinely alternates the head of line.
    pub policy: PolicySpec,
}

impl OverloadConfig {
    /// Defaults matched to the §7 testbed: deadline = half the round-trip
    /// budget, discardTimer = the deadline (a packet older than its
    /// deadline is dead weight), RLC capped at a few slots of data.
    pub fn testbed(
        stack: StackConfig,
        arrivals: ArrivalProcess,
        horizon: Duration,
    ) -> OverloadConfig {
        let deadline = Duration::from_nanos(stack.deadline.as_nanos() / 2);
        let slot_bytes = stack.slot_capacity_bytes();
        OverloadConfig {
            stack,
            arrivals,
            embb: None,
            horizon,
            deadline,
            discard_timer: Some(deadline),
            rlc_capacity_bytes: 4 * slot_bytes,
            embb_capacity_bytes: 4 * slot_bytes,
            harq_backlog_cap: 8,
            bler: 0.0,
            policy: PolicySpec::Fcfs,
        }
    }

    /// On-air bytes per URLLC packet: payload + PDCP header + RLC header.
    pub fn packet_wire_bytes(&self) -> usize {
        self.stack.payload_bytes + 2 + 1
    }
}

/// Downlink service capacity of `stack` in packets per second for
/// `wire_bytes`-byte packets: DL slots per TDD pattern × packets per slot
/// ÷ pattern period. The denominator of the sweep's offered-load ratio ρ
/// and the service rate behind the M/D/1 cross-check.
pub fn service_capacity_pps(stack: &StackConfig, wire_bytes: usize) -> f64 {
    let per_slot = (stack.slot_capacity_bytes() / wire_bytes.max(1)) as f64;
    let period = stack.duplex.pattern_period();
    let mut dl_slots = 0u32;
    let mut at = Instant::ZERO;
    while at < Instant::ZERO + period {
        let op = stack.duplex.next_dl_opportunity(at);
        if stack.duplex.slot_start(op.slot) >= Instant::ZERO + period {
            break;
        }
        dl_slots += 1;
        at = stack.duplex.slot_start(op.slot + 1);
    }
    f64::from(dl_slots) * per_slot / (period.as_micros_f64() / 1e6)
}

/// A transport block awaiting (re)transmission in the HARQ backlog.
#[derive(Debug, Clone)]
struct TbEntry {
    /// PDCP COUNTs of the URLLC packets multiplexed into the block.
    ids: Vec<u32>,
    /// Wire bytes the block occupies in a slot budget.
    bytes: usize,
    /// Transmissions already spent.
    tx_count: u32,
    /// Latest arrival among the block's packets (deadline-clamp test).
    newest_arrival: Instant,
}

/// What the open-loop run produced. URLLC packets are conserved exactly:
/// [`offered`](Self::offered) `==` [`delivered`](Self::delivered) `+`
/// [`drops`](Self::drops)`.total() +` [`in_flight`](Self::in_flight).
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// URLLC packets injected.
    pub offered: u64,
    /// URLLC packets delivered (on time or late).
    pub delivered: u64,
    /// Deliveries past the deadline.
    pub late: u64,
    /// Per-reason URLLC drops.
    pub drops: DropCounts,
    /// URLLC packets still queued when the drain window closed.
    pub in_flight: u64,
    /// Delivered-packet latency in fixed memory ([`Recording::fixed`]):
    /// overload runs are open-loop and unbounded in packet count, so the
    /// exact sample-hoarding recorder is off the table here.
    pub latency: Recording,
    /// Mean wait from arrival to first transport-block transmission.
    pub mean_queue_wait: Duration,
    /// eMBB bytes offered.
    pub embb_offered_bytes: u64,
    /// eMBB bytes that made it onto the air.
    pub embb_sent_bytes: u64,
    /// eMBB bytes tail-dropped at the RLC cap.
    pub embb_dropped_bytes: u64,
    /// eMBB bytes shed at ingress by degradation.
    pub embb_shed_bytes: u64,
    /// eMBB bytes still queued at drain end.
    pub embb_queued_bytes: u64,
    /// Peak PDCP transmission-queue depth (packets).
    pub peak_pdcp_queue: usize,
    /// Peak URLLC RLC buffer occupancy (bytes).
    pub peak_rlc_bytes: usize,
    /// Peak HARQ backlog depth (transport blocks).
    pub peak_harq_backlog: usize,
    /// DL slots processed.
    pub total_slots: u64,
    /// DL slots spent at `Degraded`.
    pub degraded_slots: u64,
    /// DL slots spent at `Critical`.
    pub critical_slots: u64,
}

impl OverloadReport {
    /// URLLC deadline-miss rate: (late + dropped) / offered.
    pub fn miss_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        (self.late + self.drops.total()) as f64 / self.offered as f64
    }

    /// Goodput: on-time deliveries per offered packet.
    pub fn goodput_ratio(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        (self.delivered - self.late) as f64 / self.offered as f64
    }

    /// `true` when every offered packet is accounted for exactly once.
    pub fn conserved(&self) -> bool {
        self.offered == self.delivered + self.drops.total() + self.in_flight
    }

    /// `true` when every offered eMBB byte is accounted for exactly once.
    pub fn embb_conserved(&self) -> bool {
        self.embb_offered_bytes
            == self.embb_sent_bytes
                + self.embb_dropped_bytes
                + self.embb_shed_bytes
                + self.embb_queued_bytes
    }
}

/// Events on the shared queue. Arrivals are self-rescheduling: each one
/// schedules its successor, so the queue never holds more than one pending
/// arrival per process regardless of the offered rate.
#[derive(Debug, Clone, Copy)]
enum Ev {
    UrllcArrival,
    EmbbArrival,
    /// A DL slot boundary (payload: the global slot index).
    Slot(u64),
}

/// The engine proper. Bundling the mutable state lets the per-event logic
/// live in methods instead of one borrow-tangled closure soup.
struct Engine<'a> {
    cfg: &'a OverloadConfig,
    tel: &'a Telemetry,
    slot_bytes: usize,
    wire_bytes: usize,
    pdcp: PdcpEntity,
    rlc: RlcUmEntity,
    rlc_embb: RlcUmEntity,
    harq: MacBacklog<TbEntry>,
    bler_rng: SimRng,
    /// COUNT → arrival instant (COUNTs are assigned densely from 0).
    arrivals_by_count: Vec<Instant>,
    /// COUNTs resident in the URLLC RLC buffer, FIFO. UM preserves order
    /// and the engine always grants a whole SDU, so this mirror is exact.
    rlc_fifo: VecDeque<u32>,
    /// Next COUNT expected out of `pdcp.pull_tx` — gaps are discards.
    next_pull_expected: u32,
    /// Orders the URLLC/eMBB classes each slot (stateful: round-robin
    /// keeps its cursor here across slots).
    policy: Box<dyn SchedulingPolicy>,
    /// Monotone sequence counter feeding [`SchedItem::seq`] tie-breaks.
    class_seq: u64,
    report: OverloadReport,
    wait_sum_ns: u128,
    wait_n: u64,
}

impl Engine<'_> {
    fn drop_urllc(&mut self, hook: &mut dyn SloHook, count: u32, at: Instant, reason: DropReason) {
        self.report.drops.add(reason);
        self.tel.journal(JournalEvent::Drop { ping: u64::from(count), at, reason: reason.label() });
        hook.observe(at, true);
    }

    /// One transmission attempt of a transport block: draws the BLER
    /// coin, delivers on success (delivery instant = slot TX start + air
    /// time of everything sent so far this slot), requeues or drops on
    /// failure.
    fn transmit_tb(
        &mut self,
        mut tb: TbEntry,
        slot_tx_start: Instant,
        cumulative_sent: usize,
        hook: &mut dyn SloHook,
    ) {
        tb.tx_count += 1;
        let failed = self.cfg.bler > 0.0 && self.bler_rng.chance(self.cfg.bler);
        if !failed {
            let deliver = slot_tx_start + self.cfg.stack.data_air_time(cumulative_sent);
            for &count in &tb.ids {
                let latency = deliver - self.arrivals_by_count[count as usize];
                self.report.latency.record(latency);
                self.report.delivered += 1;
                let miss = latency > self.cfg.deadline;
                if miss {
                    self.report.late += 1;
                }
                hook.observe(deliver, miss);
            }
            return;
        }
        if tb.tx_count >= self.cfg.stack.harq_max_tx {
            for i in 0..tb.ids.len() {
                let count = tb.ids[i];
                self.drop_urllc(hook, count, slot_tx_start, DropReason::HarqExhausted);
            }
            return;
        }
        if self.harq.len() >= self.harq.capacity() {
            for i in 0..tb.ids.len() {
                let count = tb.ids[i];
                self.drop_urllc(hook, count, slot_tx_start, DropReason::MacBacklogFull);
            }
            return;
        }
        // Infallible: the `len() >= capacity()` early-return above already
        // dropped the block when the backlog was full, so this push always
        // has room. Not peer-reachable — backlog pressure is handled, not
        // panicked on.
        self.harq.push(tb).expect("capacity checked");
    }

    fn on_slot(&mut self, now: Instant, hook: &mut dyn SloHook) {
        let level = hook.level();
        self.report.total_slots += 1;
        match level {
            DegradationLevel::Normal => {}
            DegradationLevel::Degraded => self.report.degraded_slots += 1,
            DegradationLevel::Critical => self.report.critical_slots += 1,
        }
        let mut budget = self.slot_bytes;
        let mut sent_bytes = 0usize;

        // 1. HARQ retransmissions first — they are the oldest data.
        while budget > 0 {
            match self.harq.peek() {
                None => break,
                Some(tb) if tb.bytes > budget => break,
                Some(_) => {}
            }
            // Infallible: `peek()` returned `Some` in the match above and
            // nothing touches the backlog between the peek and this pop.
            let tb = self.harq.pop().expect("peeked");
            if level >= DegradationLevel::Critical && tb.newest_arrival + self.cfg.deadline < now {
                // Every packet in the block is already late: spend the air
                // time on packets that can still make it.
                for i in 0..tb.ids.len() {
                    let count = tb.ids[i];
                    self.drop_urllc(hook, count, now, DropReason::DeadlineClamp);
                }
                continue;
            }
            budget -= tb.bytes;
            sent_bytes += tb.bytes;
            self.transmit_tb(tb, now, sent_bytes, hook);
        }

        // 2. The policy picks the class service order for the rest of the
        // slot budget. The historic order — URLLC, then best-effort eMBB
        // on the leftovers — is exactly what FCFS (arrival order, URLLC
        // queued at PDCP first) and the priority policies produce;
        // round-robin genuinely alternates the head of line.
        let mut order = [
            SchedItem {
                rnti: 0,
                bytes: self.rlc.queued_bytes(),
                ready: now,
                tag: RequestTag {
                    priority: 0,
                    deadline: Some(now + self.cfg.deadline),
                    slice: Slice::Urllc,
                },
                seq: self.class_seq,
            },
            SchedItem {
                rnti: 1,
                bytes: self.rlc_embb.queued_bytes(),
                ready: now,
                tag: RequestTag { priority: 1, deadline: None, slice: Slice::Embb },
                seq: self.class_seq + 1,
            },
        ];
        self.class_seq += 2;
        self.policy.order(now, &mut order);
        for item in &order {
            match item.rnti {
                0 => self.serve_urllc(now, level, &mut budget, &mut sent_bytes, hook),
                _ => self.serve_embb(&mut budget, &mut sent_bytes),
            }
        }

        self.report.peak_pdcp_queue = self.report.peak_pdcp_queue.max(self.pdcp.tx_queued());
        self.report.peak_rlc_bytes = self.report.peak_rlc_bytes.max(self.rlc.queued_bytes());
        self.report.peak_harq_backlog = self.report.peak_harq_backlog.max(self.harq.len());
    }

    /// URLLC's share of a slot: refill RLC from PDCP, assemble and
    /// transmit this slot's fresh transport block.
    fn serve_urllc(
        &mut self,
        now: Instant,
        level: DegradationLevel,
        budget: &mut usize,
        sent_bytes: &mut usize,
        hook: &mut dyn SloHook,
    ) {
        // Refill the RLC buffer from PDCP. Normal pulls up to the RLC
        // cap; degraded tightens the pull point to one slot of data so
        // the standing queue stays in PDCP under discardTimer control.
        let refill_target = if level >= DegradationLevel::Degraded {
            (*budget).min(self.cfg.rlc_capacity_bytes)
        } else {
            self.cfg.rlc_capacity_bytes
        };
        // What sits in RLC is the PDCP PDU (wire bytes minus the RLC
        // header byte the pull adds later).
        let pdcp_pdu_bytes = self.wire_bytes - 1;
        while self.rlc.queued_bytes() + pdcp_pdu_bytes <= refill_target {
            let Some((count, pdu)) = self.pdcp.pull_tx(now) else { break };
            // COUNT gaps are discardTimer expiries (FIFO queue, monotone
            // deadlines).
            while self.next_pull_expected < count {
                let c = self.next_pull_expected;
                self.drop_urllc(hook, c, now, DropReason::PdcpDiscard);
                self.next_pull_expected += 1;
            }
            self.next_pull_expected = count + 1;
            match self.rlc.try_tx_sdu(pdu) {
                Ok(()) => self.rlc_fifo.push_back(count),
                Err(_) => self.drop_urllc(hook, count, now, DropReason::RlcFull),
            }
        }

        // Assemble this slot's fresh URLLC transport block.
        let mut tb_ids: Vec<u32> = Vec::new();
        let mut tb_bytes = 0usize;
        let mut newest = Instant::ZERO;
        while *budget >= self.wire_bytes && !self.rlc_fifo.is_empty() {
            // Grant exactly one whole SDU: RLC UM emits it as a full,
            // unsegmented PDU, keeping the FIFO mirror exact.
            match self.rlc.pull_pdu(self.wire_bytes) {
                Ok(Some(pdu)) => {
                    debug_assert_eq!(pdu.len(), self.wire_bytes);
                    // Infallible: the loop guard requires `rlc_fifo` to be
                    // non-empty, and the mirror is exact because UM preserves
                    // order and every grant is a whole SDU (see field doc).
                    let count = self.rlc_fifo.pop_front().expect("mirror in sync");
                    let arrival = self.arrivals_by_count[count as usize];
                    self.wait_sum_ns += u128::from((now - arrival).as_nanos());
                    self.wait_n += 1;
                    newest = newest.max(arrival);
                    tb_ids.push(count);
                    tb_bytes += pdu.len();
                    *budget -= pdu.len();
                }
                Ok(None) | Err(_) => break,
            }
        }
        if !tb_ids.is_empty() {
            *sent_bytes += tb_bytes;
            let tb = TbEntry { ids: tb_ids, bytes: tb_bytes, tx_count: 0, newest_arrival: newest };
            self.transmit_tb(tb, now, *sent_bytes, hook);
        }
    }

    /// eMBB's share of a slot: best-effort bytes ride whatever budget is
    /// left when its turn comes (no HARQ: the paper's coexistence story
    /// gives eMBB throughput, not deadlines).
    fn serve_embb(&mut self, budget: &mut usize, sent_bytes: &mut usize) {
        while *budget > 4 {
            match self.rlc_embb.pull_pdu(*budget) {
                Ok(Some(pdu)) => {
                    let hdr = if pdu[0] >> 6 <= 0b01 { 1 } else { 3 };
                    self.report.embb_sent_bytes += (pdu.len() - hdr) as u64;
                    *budget -= pdu.len();
                    *sent_bytes += pdu.len();
                }
                Ok(None) | Err(_) => break,
            }
        }
    }

    fn work_left(&self) -> bool {
        self.pdcp.tx_queued() > 0
            || !self.rlc_fifo.is_empty()
            || !self.harq.is_empty()
            || self.rlc_embb.queued_bytes() > 0
    }
}

/// Runs the open-loop overload experiment. Deterministic: all randomness
/// comes from child streams of `rng`, the clock is the event queue's, and
/// telemetry recording consumes neither.
pub fn run_overload(
    cfg: &OverloadConfig,
    rng: &SimRng,
    hook: &mut dyn SloHook,
    tel: &Telemetry,
) -> OverloadReport {
    run_overload_profiled(cfg, rng, hook, tel, &Profiler::disabled())
}

/// [`run_overload`] with a host wall-time [`Profiler`] wrapped around each
/// engine event class (`overload/urllc-arrival`, `overload/embb-arrival`,
/// `overload/slot`). The profiler reads only the host clock; the report is
/// bit-identical with or without it.
pub fn run_overload_profiled(
    cfg: &OverloadConfig,
    rng: &SimRng,
    hook: &mut dyn SloHook,
    tel: &Telemetry,
    prof: &Profiler,
) -> OverloadReport {
    let stack = &cfg.stack;
    let horizon = Instant::ZERO + cfg.horizon;
    // Drain budget: generous, but bounded — a wedged pipeline surfaces as
    // `in_flight > 0` instead of a hang.
    let drain_limit = horizon + stack.duplex.pattern_period() * 4096;

    let mut urllc_gen = ArrivalGen::new(cfg.arrivals, rng.stream("overload-urllc"));
    let mut embb_gen =
        cfg.embb.as_ref().map(|(p, _)| ArrivalGen::new(*p, rng.stream("overload-embb")));
    let embb_bytes = cfg.embb.as_ref().map_or(0, |&(_, b)| b);

    let mut pdcp = PdcpEntity::new(PdcpConfig::new(stack.seed, 1, Direction::Downlink));
    pdcp.set_discard_timer(cfg.discard_timer);
    let mut rlc = RlcUmEntity::new();
    rlc.set_tx_capacity(Some(cfg.rlc_capacity_bytes));
    let mut rlc_embb = RlcUmEntity::new();
    rlc_embb.set_tx_capacity(Some(cfg.embb_capacity_bytes));

    let mut engine = Engine {
        cfg,
        tel,
        slot_bytes: stack.slot_capacity_bytes(),
        wire_bytes: cfg.packet_wire_bytes(),
        pdcp,
        rlc,
        rlc_embb,
        harq: MacBacklog::new(cfg.harq_backlog_cap),
        bler_rng: rng.stream("overload-bler"),
        arrivals_by_count: Vec::new(),
        rlc_fifo: VecDeque::new(),
        next_pull_expected: 0,
        policy: cfg.policy.build(),
        class_seq: 0,
        report: OverloadReport {
            offered: 0,
            delivered: 0,
            late: 0,
            drops: DropCounts::default(),
            in_flight: 0,
            latency: Recording::fixed(),
            mean_queue_wait: Duration::ZERO,
            embb_offered_bytes: 0,
            embb_sent_bytes: 0,
            embb_dropped_bytes: 0,
            embb_shed_bytes: 0,
            embb_queued_bytes: 0,
            peak_pdcp_queue: 0,
            peak_rlc_bytes: 0,
            peak_harq_backlog: 0,
            total_slots: 0,
            degraded_slots: 0,
            critical_slots: 0,
        },
        wait_sum_ns: 0,
        wait_n: 0,
    };

    let payload = Bytes::from(vec![0u8; stack.payload_bytes]);

    let mut queue: EventQueue<Ev> = EventQueue::new();
    // Arrival events outrank the slot event at the same instant so a
    // packet arriving exactly on a slot boundary is eligible for it.
    let first = urllc_gen.next_arrival();
    if first < horizon {
        queue.push_with_priority(first, 0, Ev::UrllcArrival);
    }
    if let Some(gen) = embb_gen.as_mut() {
        let first = gen.next_arrival();
        if first < horizon {
            queue.push_with_priority(first, 0, Ev::EmbbArrival);
        }
    }
    let op0 = stack.duplex.next_dl_opportunity(Instant::ZERO);
    queue.push_with_priority(op0.tx_start, 1, Ev::Slot(op0.slot));

    while let Some((now, ev)) = queue.pop() {
        match ev {
            Ev::UrllcArrival => {
                let _t = prof.scope("overload/urllc-arrival");
                let count = engine.pdcp.tx_enqueue(now, payload.clone());
                debug_assert_eq!(count as usize, engine.arrivals_by_count.len());
                engine.arrivals_by_count.push(now);
                engine.report.offered += 1;
                let next = urllc_gen.next_arrival();
                if next < horizon {
                    queue.push_with_priority(next, 0, Ev::UrllcArrival);
                }
            }
            Ev::EmbbArrival => {
                let _t = prof.scope("overload/embb-arrival");
                engine.report.embb_offered_bytes += embb_bytes as u64;
                if hook.level() >= DegradationLevel::Degraded {
                    // Byte-ledger only: `drops` counts URLLC packets, and
                    // shedding is an eMBB-side action.
                    engine.report.embb_shed_bytes += embb_bytes as u64;
                    tel.journal(JournalEvent::Drop {
                        ping: u64::MAX,
                        at: now,
                        reason: DropReason::SloShed.label(),
                    });
                } else {
                    match engine.rlc_embb.try_tx_sdu(Bytes::from(vec![0xBEu8; embb_bytes])) {
                        Ok(()) => {}
                        Err(RlcError::TxBufferFull { .. }) => {
                            engine.report.embb_dropped_bytes += embb_bytes as u64;
                            tel.journal(JournalEvent::Drop {
                                ping: u64::MAX,
                                at: now,
                                reason: DropReason::RlcFull.label(),
                            });
                        }
                        Err(e) => unreachable!("try_tx_sdu only fails with TxBufferFull: {e}"),
                    }
                }
                if let Some(gen) = embb_gen.as_mut() {
                    let next = gen.next_arrival();
                    if next < horizon {
                        queue.push_with_priority(next, 0, Ev::EmbbArrival);
                    }
                }
            }
            Ev::Slot(slot) => {
                let _t = prof.scope("overload/slot");
                engine.on_slot(now, hook);
                // Schedule the next DL slot while arrivals remain or any
                // stage still holds data (bounded by the drain limit).
                if !queue.is_empty() || engine.work_left() {
                    let after = stack.duplex.slot_start(slot + 1);
                    let op = stack.duplex.next_dl_opportunity(after);
                    if op.tx_start <= drain_limit {
                        queue.push_with_priority(op.tx_start, 1, Ev::Slot(op.slot));
                    }
                }
            }
        }
    }

    // Final reconciliation. The PDCP queue is FIFO, so whatever was never
    // pulled splits into a discarded prefix and an in-flight suffix of
    // length `tx_queued()`.
    let total = engine.report.offered as u32;
    let queued = engine.pdcp.tx_queued() as u32;
    let end = queue.now();
    while engine.next_pull_expected < total.saturating_sub(queued) {
        let c = engine.next_pull_expected;
        engine.drop_urllc(hook, c, end, DropReason::PdcpDiscard);
        engine.next_pull_expected += 1;
    }
    // Whatever is still queued anywhere (PDCP, RLC, HARQ) is in flight.
    let harq_in_flight: u64 = {
        let mut n = 0u64;
        while let Some(tb) = engine.harq.pop() {
            n += tb.ids.len() as u64;
        }
        n
    };
    engine.report.in_flight = u64::from(queued) + engine.rlc_fifo.len() as u64 + harq_in_flight;
    engine.report.embb_queued_bytes = engine.rlc_embb.queued_bytes() as u64;
    engine.report.mean_queue_wait = if engine.wait_n == 0 {
        Duration::ZERO
    } else {
        Duration::from_nanos((engine.wait_sum_ns / u128::from(engine.wait_n)) as u64)
    };
    engine.report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StackConfig;
    use ran::sched::AccessMode;

    fn base_cfg(rate_pps: f64, horizon_ms: u64) -> OverloadConfig {
        let stack = StackConfig::testbed_dddu(AccessMode::GrantBased, true);
        OverloadConfig::testbed(
            stack,
            ArrivalProcess::poisson_pps(rate_pps),
            Duration::from_millis(horizon_ms),
        )
    }

    fn run(cfg: &OverloadConfig, seed: u64) -> OverloadReport {
        let rng = SimRng::from_seed(seed);
        let mut hook = NullHook;
        run_overload(cfg, &rng, &mut hook, &Telemetry::disabled())
    }

    #[test]
    fn light_load_delivers_everything_on_time() {
        let cfg = base_cfg(500.0, 200);
        let r = run(&cfg, 1);
        assert!(r.offered > 50, "offered {}", r.offered);
        assert!(r.conserved(), "conservation: {r:?}");
        assert_eq!(r.drops.total(), 0);
        assert_eq!(r.in_flight, 0);
        assert_eq!(r.late, 0, "p100 latency {} us", r.latency.max_us());
        assert_eq!(r.delivered, r.offered);
    }

    #[test]
    fn overload_drops_are_typed_and_memory_bounded() {
        let cap =
            service_capacity_pps(&StackConfig::testbed_dddu(AccessMode::GrantBased, true), 64 + 3);
        let cfg = base_cfg(cap * 2.0, 200);
        let r = run(&cfg, 2);
        assert!(r.conserved(), "conservation: {r:?}");
        assert!(r.drops.get(DropReason::PdcpDiscard) > 0, "expected discard drops: {r:?}");
        // Memory bound: the PDCP queue can hold at most discard_timer's
        // worth of arrivals, the RLC buffer at most its byte cap.
        let max_dwell_packets =
            (cap * 2.0 * cfg.discard_timer.unwrap().as_micros_f64() / 1e6 * 2.0) as usize;
        assert!(
            r.peak_pdcp_queue <= max_dwell_packets,
            "{} > {max_dwell_packets}",
            r.peak_pdcp_queue
        );
        assert!(r.peak_rlc_bytes <= cfg.rlc_capacity_bytes);
        // Deliveries still happen at full service rate.
        assert!(r.delivered > r.offered / 3, "{r:?}");
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let cfg = base_cfg(20_000.0, 100);
        let mut a = run(&cfg, 7);
        let mut b = run(&cfg, 7);
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.drops, b.drops);
        assert_eq!(a.latency.quantile_us(0.99), b.latency.quantile_us(0.99));
        let mut c = run(&cfg, 8);
        assert!(a.offered != c.offered || a.latency.quantile_us(0.5) != c.latency.quantile_us(0.5));
    }

    #[test]
    fn bler_exercises_harq_and_stays_conserved() {
        let mut cfg = base_cfg(2_000.0, 300);
        cfg.bler = 0.3;
        cfg.harq_backlog_cap = 2;
        let r = run(&cfg, 3);
        assert!(r.conserved(), "conservation: {r:?}");
        assert!(r.peak_harq_backlog > 0, "HARQ backlog never used: {r:?}");
    }

    #[test]
    fn embb_bytes_are_conserved_and_shed_under_static_degradation() {
        struct AlwaysDegraded;
        impl SloHook for AlwaysDegraded {
            fn observe(&mut self, _at: Instant, _miss: bool) {}
            fn level(&self) -> DegradationLevel {
                DegradationLevel::Degraded
            }
        }
        let mut cfg = base_cfg(1_000.0, 100);
        cfg.embb = Some((ArrivalProcess::poisson_pps(2_000.0), 1000));
        let rng = SimRng::from_seed(4);
        let mut hook = AlwaysDegraded;
        let r = run_overload(&cfg, &rng, &mut hook, &Telemetry::disabled());
        assert!(r.embb_conserved(), "embb ledger: {r:?}");
        assert!(r.embb_shed_bytes > 0);
        assert_eq!(r.embb_sent_bytes, 0, "every eMBB byte was shed at ingress");
        assert!(r.conserved());
        // URLLC unaffected by the shed background.
        assert_eq!(r.drops.get(DropReason::PdcpDiscard), 0);
    }

    #[test]
    fn class_order_follows_the_policy() {
        let cap =
            service_capacity_pps(&StackConfig::testbed_dddu(AccessMode::GrantBased, true), 64 + 3);
        let mk = |policy: PolicySpec| {
            let mut cfg = base_cfg(cap * 1.2, 150);
            cfg.embb = Some((ArrivalProcess::poisson_pps(3_000.0), 1000));
            cfg.policy = policy;
            run(&cfg, 11)
        };
        let mut fcfs = mk(PolicySpec::Fcfs);
        let mut prio = mk(PolicySpec::NonPreemptivePriority);
        let rr = mk(PolicySpec::RoundRobin);
        // FCFS (arrival order — URLLC queues at PDCP before eMBB's turn)
        // and strict priority produce the same service order, so the
        // whole report must agree.
        assert_eq!(fcfs.delivered, prio.delivered);
        assert_eq!(fcfs.late, prio.late);
        assert_eq!(fcfs.drops, prio.drops);
        assert_eq!(fcfs.embb_sent_bytes, prio.embb_sent_bytes);
        assert_eq!(fcfs.latency.quantile_us(0.99), prio.latency.quantile_us(0.99));
        // Round-robin hands eMBB the head of line every other slot: more
        // best-effort bytes make the air.
        assert!(
            rr.embb_sent_bytes > fcfs.embb_sent_bytes,
            "rr {} vs fcfs {}",
            rr.embb_sent_bytes,
            fcfs.embb_sent_bytes
        );
        assert!(rr.conserved() && rr.embb_conserved(), "{rr:?}");
    }

    #[test]
    fn service_capacity_matches_dddu_pattern() {
        let stack = StackConfig::testbed_dddu(AccessMode::GrantBased, true);
        let wire = 64 + 3;
        let per_slot = (stack.slot_capacity_bytes() / wire) as f64;
        // DDDU: 3 DL slots per 2 ms pattern.
        let expect = 3.0 * per_slot / 0.002;
        let got = service_capacity_pps(&stack, wire);
        assert!((got - expect).abs() < 1e-6, "{got} vs {expect}");
    }
}
