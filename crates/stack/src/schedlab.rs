//! The scheduler/slicing laboratory — a policy × load × slice-mix sweep
//! over the [`ran::sched`] policy layer (ROADMAP scheduler-lab item).
//!
//! SimURLLC-style experiment: three traffic classes (URLLC / eMBB / mMTC)
//! offer Poisson downlink load against one cell's slot machinery, and
//! every [`PolicySpec`] in the set orders the same arrival trace. The lab
//! measures what the *policy* changes — per-class p50/p99/p999 latency
//! and deadline-miss rate — with everything else (arrivals, capacity,
//! slot pattern) held byte-identical across policies.
//!
//! ## Determinism
//!
//! Every (policy, load, mix) point is one shard of
//! [`sim::parallel::run_shards`] and draws its arrivals from
//! `stream_indexed("sched-point", i)` of the master seed; policies draw
//! no randomness at all. The report vector is assembled in point-index
//! order, so the sweep is byte-identical at any worker count.
//!
//! ## The closed-form preemption bound
//!
//! [`PreemptionBoundModel`] caps preemptive URLLC latency analytically:
//! a packet waits at most one slot for the next scheduling boundary,
//! the scheduler needs its lead plus the gap to the next DL-capable
//! slot, and preemption removes queueing behind other classes — so only
//! the packet's own air time remains. The lab's tests assert the
//! simulated maximum stays under this bound.

use std::collections::VecDeque;

use ran::sched::{
    AccessMode, EmergencyBurst, PolicySpec, RequestTag, Rnti, Scheduler, SliceShares,
};
use serde::Serialize;
use sim::{Dist, Duration, Instant, Recording, SimRng};

use crate::config::StackConfig;
use crate::multicell::{dl_capacity_bytes_per_sec, slice_of};

/// One traffic class of a lab mix.
#[derive(Debug, Clone, Serialize)]
pub struct LabClass {
    /// Label carried into the report and CSV (e.g. `"urllc"`).
    pub name: &'static str,
    /// Serving priority, 0 = highest. Also selects the slice (see
    /// [`slice_of`]): 0 → URLLC, 1 → eMBB, 2+ → mMTC.
    pub priority: u8,
    /// Bytes per packet as the scheduler sees them.
    pub packet_bytes: usize,
    /// This class's share of the offered byte rate.
    pub byte_share: f64,
    /// Per-packet delivery deadline (arrival → transmission end).
    pub deadline: Duration,
}

/// A slice mix: the class population plus an optional URLLC surge.
#[derive(Debug, Clone, Serialize)]
pub struct LabMix {
    /// Label carried into the report and CSV (e.g. `"factory"`).
    pub name: &'static str,
    /// Traffic classes, byte shares summing to 1.
    pub classes: Vec<LabClass>,
    /// Optional emergency window: the URLLC arrival rate is multiplied by
    /// the burst magnitude inside it, and slice-aware policies get the
    /// same burst injected into their URLLC budget.
    pub emergency: Option<EmergencyBurst>,
}

/// The laboratory sweep: policies × loads × mixes, one shard per point.
#[derive(Debug, Clone)]
pub struct SchedLabConfig {
    /// Radio/slot parameters (and the master seed) shared by every point.
    pub stack: StackConfig,
    /// Policies under test.
    pub policies: Vec<PolicySpec>,
    /// Offered load as a fraction of downlink capacity (1.0 = saturated).
    pub loads: Vec<f64>,
    /// Slice mixes under test.
    pub mixes: Vec<LabMix>,
    /// Arrival window per point.
    pub horizon: Duration,
}

/// The URLLC-heavy factory-cell mix (tight deadlines, thin packets).
fn factory_mix() -> LabMix {
    LabMix {
        name: "factory",
        classes: vec![
            LabClass {
                name: "urllc",
                priority: 0,
                packet_bytes: 64,
                byte_share: 0.30,
                deadline: Duration::from_micros(2_500),
            },
            LabClass {
                name: "embb",
                priority: 1,
                packet_bytes: 400,
                byte_share: 0.50,
                deadline: Duration::from_millis(20),
            },
            LabClass {
                name: "mmtc",
                priority: 2,
                packet_bytes: 32,
                byte_share: 0.20,
                deadline: Duration::from_millis(50),
            },
        ],
        emergency: None,
    }
}

/// The broadband-dominated dense-urban mix.
fn urban_mix() -> LabMix {
    LabMix {
        name: "urban",
        classes: vec![
            LabClass {
                name: "urllc",
                priority: 0,
                packet_bytes: 64,
                byte_share: 0.10,
                deadline: Duration::from_micros(2_500),
            },
            LabClass {
                name: "embb",
                priority: 1,
                packet_bytes: 400,
                byte_share: 0.70,
                deadline: Duration::from_millis(20),
            },
            LabClass {
                name: "mmtc",
                priority: 2,
                packet_bytes: 32,
                byte_share: 0.20,
                deadline: Duration::from_millis(50),
            },
        ],
        emergency: None,
    }
}

/// The urban mix with an emergency URLLC surge mid-window (SimURLLC's
/// emergency events): 3× the URLLC arrival rate for 30 ms.
fn emergency_mix() -> LabMix {
    LabMix {
        emergency: Some(EmergencyBurst {
            start: Instant::ZERO + Duration::from_millis(50),
            duration: Duration::from_millis(30),
            magnitude: 3.0,
        }),
        name: "emergency",
        ..urban_mix()
    }
}

impl SchedLabConfig {
    /// The SimURLLC policy set over the §7 testbed: seven policies ×
    /// three loads × three mixes. Preemptive specs carry no standing
    /// background here — the eMBB they puncture is the mix's own explicit
    /// traffic, held as soft reservations.
    pub fn simurllc(seed: u64) -> SchedLabConfig {
        SchedLabConfig {
            stack: StackConfig::testbed_dddu(AccessMode::GrantFree, true).with_seed(seed),
            policies: vec![
                PolicySpec::Fcfs,
                PolicySpec::NonPreemptivePriority,
                PolicySpec::PreemptivePriority { dl_background: 0 },
                PolicySpec::RoundRobin,
                PolicySpec::EarliestDeadlineFirst,
                PolicySpec::HybridEdfPreemptive { dl_background: 0 },
                PolicySpec::SliceAware(SliceShares::even()),
            ],
            loads: vec![0.5, 0.8, 1.1],
            mixes: vec![factory_mix(), urban_mix(), emergency_mix()],
            horizon: Duration::from_millis(200),
        }
    }
}

/// Per-class outcome of one lab point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LabClassReport {
    /// Class label.
    pub class: &'static str,
    /// Packets offered (every lab arrival is eventually assigned).
    pub count: u64,
    /// Median latency, µs.
    pub p50_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// 99.9th-percentile latency, µs.
    pub p999_us: f64,
    /// Largest observed latency, µs.
    pub max_us: f64,
    /// Fraction of packets past their class deadline.
    pub miss_rate: f64,
}

/// One (policy, load, mix) point of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LabPointReport {
    /// Policy label ([`PolicySpec::name`]).
    pub policy: &'static str,
    /// Offered load fraction.
    pub load: f64,
    /// Mix label.
    pub mix: &'static str,
    /// Per-class outcomes, in mix order.
    pub classes: Vec<LabClassReport>,
    /// Soft-reservation bytes punctured by preemptive policies (0 for
    /// non-preemptive ones).
    pub punctured_bytes: u64,
}

/// Runs one (policy, load, mix) point: pre-samples the class arrival
/// processes, then drives the scheduler slot by slot, feeding arrivals at
/// each boundary and attributing assignments back to classes through
/// per-class FIFO ledgers (exact: every policy is seq-stable within a
/// class, so per-class service order is arrival order).
fn run_point(
    cfg: &SchedLabConfig,
    spec: &PolicySpec,
    load: f64,
    mix: &LabMix,
    index: u64,
) -> LabPointReport {
    let stack = &cfg.stack;
    // Slice-aware budgets honour the mix's emergency window.
    let spec = match (*spec, mix.emergency) {
        (PolicySpec::SliceAware(mut s), Some(e)) => {
            s.emergency = Some(e);
            PolicySpec::SliceAware(s)
        }
        (other, _) => other,
    };
    let mut sched = Scheduler::new(stack.clone().with_policy(spec).scheduler_config());

    let rng = SimRng::from_seed(stack.seed).stream_indexed("sched-point", index);
    let offered_bps = load * dl_capacity_bytes_per_sec(stack);
    let horizon = Instant::ZERO + cfg.horizon;

    // Pre-sample every class's Poisson arrivals (the scheduler draws no
    // RNG, so sampling up front changes nothing), then merge by time with
    // class index as the tie-break — a deterministic single trace every
    // policy replays identically.
    let mut arrivals: Vec<(Instant, usize)> = Vec::new();
    for (ci, class) in mix.classes.iter().enumerate() {
        let mut r = rng.stream_indexed("class", ci as u64);
        let pps = (offered_bps * class.byte_share / class.packet_bytes as f64).max(1e-9);
        let base_mean = Duration::from_micros_f64(1e6 / pps);
        let mut t = Instant::ZERO;
        loop {
            // The emergency window multiplies the URLLC rate (divides the
            // mean inter-arrival) while it is active.
            let factor = match mix.emergency {
                Some(e) if class.priority == 0 => e.factor_at(t),
                _ => 1.0,
            };
            let mean = Duration::from_micros_f64(base_mean.as_micros_f64() / factor);
            t += Dist::Exponential { mean }.sample(&mut r);
            if t >= horizon {
                break;
            }
            arrivals.push((t, ci));
        }
    }
    arrivals.sort_by_key(|&(t, ci)| (t, ci));

    let mut pending: Vec<VecDeque<Instant>> = mix.classes.iter().map(|_| VecDeque::new()).collect();
    let mut recs: Vec<Recording> = mix.classes.iter().map(|_| Recording::fixed()).collect();
    let mut misses: Vec<u64> = vec![0; mix.classes.len()];

    let mut next = 0usize;
    let mut slot = 0u64;
    while next < arrivals.len() {
        slot += 1;
        let now = stack.duplex.slot_start(slot);
        while next < arrivals.len() && arrivals[next].0 < now {
            let (t, ci) = arrivals[next];
            let class = &mix.classes[ci];
            sched.on_dl_data_tagged(
                ci as Rnti,
                class.packet_bytes,
                t,
                RequestTag {
                    priority: class.priority,
                    deadline: Some(t + class.deadline),
                    slice: slice_of(class.priority),
                },
            );
            pending[ci].push_back(t);
            next += 1;
        }
        // Every request ready before the boundary is assigned this round
        // (first-fit probes forward until a slot has room), so the loop
        // ends exactly when the trace is exhausted.
        for a in sched.run_slot(slot).dl_assignments {
            let ci = a.rnti as usize;
            // Within a class every policy orders by seq (stable sorts +
            // seq tie-break), so assignment order is arrival order.
            let arrival = pending[ci].pop_front().expect("per-class FIFO ledger in sync");
            let latency = a.dl.tx_start + stack.data_air_time(a.bytes) - arrival;
            recs[ci].record(latency);
            if latency > mix.classes[ci].deadline {
                misses[ci] += 1;
            }
        }
    }

    let classes = mix
        .classes
        .iter()
        .enumerate()
        .map(|(ci, class)| {
            let rec = &mut recs[ci];
            let count = rec.count();
            LabClassReport {
                class: class.name,
                count,
                p50_us: rec.try_quantile_us(0.5).unwrap_or(0.0),
                p99_us: rec.try_quantile_us(0.99).unwrap_or(0.0),
                p999_us: rec.try_quantile_us(0.999).unwrap_or(0.0),
                max_us: rec.max_us(),
                miss_rate: misses[ci] as f64 / count.max(1) as f64,
            }
        })
        .collect();
    LabPointReport {
        policy: spec.name(),
        load,
        mix: mix.name,
        classes,
        punctured_bytes: sched.punctured_bytes(),
    }
}

/// Runs the whole sweep, one shard per (policy, load, mix) point, and
/// returns the reports in point order (policy-major, then load, then
/// mix) — byte-identical at any worker count.
pub fn run_sched_lab(cfg: &SchedLabConfig) -> Vec<LabPointReport> {
    let mut points: Vec<(&PolicySpec, f64, &LabMix)> = Vec::new();
    for p in &cfg.policies {
        for &l in &cfg.loads {
            for m in &cfg.mixes {
                points.push((p, l, m));
            }
        }
    }
    sim::parallel::run_shards(points.len(), |i| {
        let (p, l, m) = points[i];
        run_point(cfg, p, l, m, i as u64)
    })
}

/// Closed-form cap on URLLC latency under a preemptive policy.
#[derive(Debug, Clone, Copy)]
pub struct PreemptionBoundModel {
    /// Worst boundary-to-transmission-start gap across the TDD period
    /// (scheduler lead + wait for the next DL-capable slot).
    pub worst_dispatch: Duration,
    /// The full bound: one slot of boundary wait + worst dispatch + the
    /// packet's own air time.
    pub bound: Duration,
}

impl PreemptionBoundModel {
    /// Builds the bound for `urllc_bytes`-byte packets on `stack`. A
    /// packet arriving anywhere in the TDD period waits at most one slot
    /// for the next scheduling boundary; the scheduler then needs its
    /// data lead plus the gap to the next DL-capable slot; preemption
    /// sees through every other class's soft reservations, so no queueing
    /// term remains. Valid while URLLC's own (hard) bytes never fill a
    /// slot — the regime every lab load point stays in.
    pub fn new(stack: &StackConfig, urllc_bytes: usize) -> PreemptionBoundModel {
        let sc = stack.scheduler_config();
        let slot = stack.duplex.slot_duration();
        let period_slots = (stack.duplex.pattern_period().as_nanos() / slot.as_nanos()).max(1);
        let mut worst = Duration::ZERO;
        for b in 0..period_slots {
            let boundary = stack.duplex.slot_start(b);
            let op = stack.duplex.next_dl_opportunity(boundary.saturating_add(sc.lead));
            worst = worst.max(op.tx_start - boundary);
        }
        PreemptionBoundModel {
            worst_dispatch: worst,
            bound: slot + worst + stack.data_air_time(urllc_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cut-down grid that still exercises multiple policies.
    fn small(policies: Vec<PolicySpec>) -> SchedLabConfig {
        let mut cfg = SchedLabConfig::simurllc(23);
        cfg.policies = policies;
        cfg.loads = vec![0.8];
        cfg.mixes = vec![factory_mix()];
        cfg.horizon = Duration::from_millis(60);
        cfg
    }

    fn urllc(p: &LabPointReport) -> &LabClassReport {
        p.classes.iter().find(|c| c.class == "urllc").unwrap()
    }

    #[test]
    fn default_grid_covers_the_required_sweep() {
        let cfg = SchedLabConfig::simurllc(1);
        assert!(cfg.policies.len() >= 5, "{} policies", cfg.policies.len());
        assert!(cfg.loads.len() >= 3);
        assert!(cfg.mixes.len() >= 3);
        // Policy labels are unique (they key the CSV).
        let mut names: Vec<_> = cfg.policies.iter().map(PolicySpec::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cfg.policies.len());
    }

    #[test]
    fn sweep_is_worker_count_invariant() {
        let cfg = small(vec![PolicySpec::Fcfs, PolicySpec::EarliestDeadlineFirst]);
        sim::parallel::set_jobs(1);
        let a = run_sched_lab(&cfg);
        sim::parallel::set_jobs(2);
        let b = run_sched_lab(&cfg);
        sim::parallel::set_jobs(0);
        assert_eq!(a, b);
    }

    #[test]
    fn every_arrival_is_served_exactly_once() {
        let cfg = small(vec![PolicySpec::RoundRobin]);
        let pts = run_sched_lab(&cfg);
        assert_eq!(pts.len(), 1);
        // Same trace, different policy: identical per-class counts.
        let cfg2 = small(vec![PolicySpec::Fcfs]);
        let pts2 = run_sched_lab(&cfg2);
        for (a, b) in pts[0].classes.iter().zip(&pts2[0].classes) {
            assert!(a.count > 0, "class {} served nothing", a.class);
            assert_eq!(a.count, b.count, "class {}", a.class);
        }
    }

    #[test]
    fn preemption_beats_queueing_for_urllc_under_saturation() {
        let mut cfg = small(vec![
            PolicySpec::NonPreemptivePriority,
            PolicySpec::PreemptivePriority { dl_background: 0 },
        ]);
        cfg.loads = vec![1.1];
        let pts = run_sched_lab(&cfg);
        let queued = urllc(&pts[0]);
        let preempted = urllc(&pts[1]);
        assert!(
            preempted.p99_us < queued.p99_us,
            "preemptive p99 {} should beat non-preemptive {}",
            preempted.p99_us,
            queued.p99_us
        );
        assert!(pts[1].punctured_bytes > 0, "saturation must puncture");
        assert_eq!(pts[0].punctured_bytes, 0);
    }

    #[test]
    fn simulated_preemptive_urllc_stays_under_the_closed_form_bound() {
        let mut cfg = small(vec![
            PolicySpec::PreemptivePriority { dl_background: 0 },
            PolicySpec::HybridEdfPreemptive { dl_background: 0 },
        ]);
        cfg.loads = vec![0.8, 1.1];
        let urllc_bytes = cfg.mixes[0].classes[0].packet_bytes;
        let bound = PreemptionBoundModel::new(&cfg.stack, urllc_bytes);
        assert!(bound.bound > Duration::ZERO);
        for p in run_sched_lab(&cfg) {
            let c = urllc(&p);
            assert!(
                c.max_us <= bound.bound.as_micros_f64() + 1e-6,
                "{} at load {}: max {} µs exceeds bound {} µs",
                p.policy,
                p.load,
                c.max_us,
                bound.bound.as_micros_f64()
            );
        }
    }

    #[test]
    fn emergency_burst_raises_urllc_traffic() {
        let mut cfg = SchedLabConfig::simurllc(5);
        cfg.policies = vec![PolicySpec::SliceAware(SliceShares::even())];
        cfg.loads = vec![0.8];
        cfg.horizon = Duration::from_millis(100);
        cfg.mixes = vec![urban_mix()];
        let calm = run_sched_lab(&cfg);
        cfg.mixes = vec![emergency_mix()];
        let surged = run_sched_lab(&cfg);
        assert!(
            urllc(&surged[0]).count > urllc(&calm[0]).count,
            "surge {} vs calm {}",
            urllc(&surged[0]).count,
            urllc(&calm[0]).count
        );
    }
}
