//! City-scale multi-cell downlink simulation — ROADMAP item 1.
//!
//! The paper's feasibility question ("is 0.5 ms / five-nines close or
//! distant?") is only answered at scale: one cell with a few hundred
//! closed-loop UEs never reaches the queueing and scheduler-contention
//! regimes where URLLC actually fails. This module simulates an N-gNB
//! topology where every cell owns its own event queue, slot clock, and a
//! heterogeneous UE population (count × arrival rate × packet size ×
//! priority × deadline, per-cell mix), and fans the cells across
//! [`sim::parallel`] shards with *cells as the shard boundary*.
//!
//! ## How 10⁵–10⁶ UEs fit in fixed memory
//!
//! Two deliberate collapses keep the engine's footprint independent of
//! both the UE count and the packet count:
//!
//! * **Arrivals are aggregated per class.** The superposition of `n`
//!   independent Poisson processes of rate `λ` is a Poisson process of
//!   rate `n·λ`, exactly — so a class of 55 000 sensors is one
//!   self-rescheduling arrival event, not 55 000 event streams. The UE
//!   count still matters: it sets the aggregate rate and inflates the
//!   gNB's per-packet scheduling/decode work ("higher number of UEs might
//!   increase the processing times noticeably", §7).
//! * **Latency is recorded fixed-memory.** Every class records into a
//!   [`Recording::fixed`] log-linear histogram (≤ 6.25 % relative
//!   quantile error) instead of the sample-hoarding exact recorder — a
//!   million-packet cell costs the same bytes as a thousand-packet cell.
//!
//! Queues are bounded ([`MulticellConfig::queue_cap`]); a full class
//! queue tail-drops, so even an over-saturated hotspot cell runs in
//! constant space and every offered packet is accounted for:
//! `offered == delivered + dropped + in_flight`.
//!
//! ## Determinism
//!
//! Cell `i` draws all its randomness from `stream_indexed("cell", i)` of
//! the master seed and shares no state with its neighbours, so the shard
//! reduction (index order) is byte-identical at any worker count.

use ran::sched::{PolicySpec, RequestTag, Rnti, SchedItem, Slice};
use serde::Serialize;
use sim::{Dist, Duration, EventQueue, Instant, Recording, SimRng};

use crate::config::StackConfig;
use crate::node::StackError;

/// One homogeneous slice of a cell's UE population.
#[derive(Debug, Clone, Serialize)]
pub struct UeClass {
    /// Label carried into the report and CSV (e.g. `"urllc"`).
    pub name: &'static str,
    /// Attached UEs of this class.
    pub count: u64,
    /// Mean inter-packet interval *per UE* (Poisson). The engine serves
    /// the aggregate process of rate `count / mean_interval`.
    pub mean_interval: Duration,
    /// Application payload bytes per packet.
    pub packet_bytes: usize,
    /// Serving priority: lower value is served first within a slot.
    pub priority: u8,
    /// Per-class delivery deadline (arrival → decoded at the UE).
    pub deadline: Duration,
}

impl UeClass {
    /// Aggregate packet arrival rate of the whole class (packets/s).
    pub fn aggregate_pps(&self) -> f64 {
        self.count as f64 / (self.mean_interval.as_micros_f64() / 1e6)
    }
}

/// One gNB and its population mix.
#[derive(Debug, Clone, Serialize)]
pub struct CellConfig {
    /// The population served by this cell, in any order (the engine sorts
    /// by priority).
    pub classes: Vec<UeClass>,
}

impl CellConfig {
    /// Total attached UEs.
    pub fn n_ues(&self) -> u64 {
        self.classes.iter().map(|c| c.count).sum()
    }
}

/// The multi-cell experiment: shared radio parameters, per-cell mixes.
#[derive(Debug, Clone)]
pub struct MulticellConfig {
    /// Radio/slot parameters shared by every cell (capacity, duplexing,
    /// processing models). The seed is the master seed.
    pub stack: StackConfig,
    /// One entry per gNB.
    pub cells: Vec<CellConfig>,
    /// Arrival window. Slots keep running past it until every queue
    /// drains (bounded; leftovers surface as `in_flight`).
    pub horizon: Duration,
    /// Per-class bound on queued packets — the fixed-memory guarantee for
    /// over-saturated cells. A full queue tail-drops.
    pub queue_cap: usize,
    /// Fractional growth of per-packet gNB scheduling/decode work per
    /// attached UE in the cell (§7's population cost). Multi-cell default
    /// is gentler than [`crate::multi_ue`]'s because populations here
    /// reach 10⁵ per cell.
    pub sched_scaling_per_ue: f64,
    /// Scheduling policy every cell orders its class queues with each
    /// slot. The class list is pre-sorted by priority, so the default
    /// `Fcfs` identity *is* strict priority — the historic behaviour,
    /// byte for byte; other policies genuinely reorder service.
    pub policy: PolicySpec,
}

impl MulticellConfig {
    /// Total attached UEs across every cell.
    pub fn total_ues(&self) -> u64 {
        self.cells.iter().map(CellConfig::n_ues).sum()
    }

    /// A dense-urban deployment: `n_cells` gNBs, `ues_per_cell` UEs each,
    /// mixed 2 % URLLC / 10 % video / 88 % mMTC sensors. Per-UE rates are
    /// derived from a target downlink utilisation, so growing the
    /// population reshapes *who* the traffic comes from without
    /// overrunning the cell by construction; every fourth cell is a
    /// hotspot offered twice its capacity (the regime where tails die).
    pub fn dense_urban(n_cells: usize, ues_per_cell: u64, seed: u64) -> MulticellConfig {
        let stack =
            StackConfig::testbed_dddu(ran::sched::AccessMode::GrantBased, true).with_seed(seed);
        let capacity_bps = dl_capacity_bytes_per_sec(&stack);
        let cells = (0..n_cells)
            .map(|i| {
                // Hotspots run well past saturation; the rest sit at a
                // busy but stable load.
                let rho = if i % 4 == 0 { 2.0 } else { 0.55 };
                let offered_bps = rho * capacity_bps;
                // Byte-rate shares of the mix (URLLC is thin but critical).
                let mk = |name, ue_frac: f64, byte_share: f64, bytes: usize, prio, deadline| {
                    let count = ((ues_per_cell as f64 * ue_frac).round() as u64).max(1);
                    let pps = (offered_bps * byte_share / bytes as f64).max(1e-9);
                    let per_ue_interval_us = count as f64 / pps * 1e6;
                    UeClass {
                        name,
                        count,
                        mean_interval: Duration::from_micros_f64(per_ue_interval_us),
                        packet_bytes: bytes,
                        priority: prio,
                        deadline,
                    }
                };
                CellConfig {
                    classes: vec![
                        mk("urllc", 0.02, 0.10, 64, 0, Duration::from_millis(2)),
                        mk("video", 0.10, 0.60, 1200, 1, Duration::from_millis(20)),
                        mk("sensor", 0.88, 0.30, 32, 2, Duration::from_millis(100)),
                    ],
                }
            })
            .collect();
        MulticellConfig {
            stack,
            cells,
            horizon: Duration::from_millis(400),
            queue_cap: 4096,
            sched_scaling_per_ue: 1e-5,
            policy: PolicySpec::Fcfs,
        }
    }
}

/// Maps a class's serving priority onto the slice taxonomy slice-aware
/// policies consult (0 = URLLC, 1 = broadband, everything else = massive
/// machine-type).
pub(crate) fn slice_of(priority: u8) -> Slice {
    match priority {
        0 => Slice::Urllc,
        1 => Slice::Embb,
        _ => Slice::Mmtc,
    }
}

/// Mean downlink capacity in bytes/s under the configured duplex pattern.
pub(crate) fn dl_capacity_bytes_per_sec(stack: &StackConfig) -> f64 {
    let slot_s = stack.duplex.slot_duration().as_micros_f64() / 1e6;
    // Count DL-capable slots over one pattern period by walking real
    // opportunities (works for FDD and any TDD pattern).
    let period = stack.duplex.pattern_period();
    let period_slots = (period.as_nanos() / stack.duplex.slot_duration().as_nanos()).max(1);
    let mut dl_slots = 0u64;
    let mut at = Instant::ZERO;
    loop {
        let op = stack.duplex.next_dl_opportunity(at);
        if op.slot >= period_slots {
            break;
        }
        dl_slots += 1;
        at = stack.duplex.slot_start(op.slot + 1);
    }
    let dl_frac = dl_slots as f64 / period_slots as f64;
    stack.slot_capacity_bytes() as f64 * dl_frac / slot_s
}

/// Per-class outcome within one cell.
#[derive(Debug, Clone, Serialize)]
pub struct ClassReport {
    /// Class label (from [`UeClass::name`]).
    pub name: &'static str,
    /// UEs behind this class.
    pub ues: u64,
    /// Packets offered within the horizon.
    pub offered: u64,
    /// Packets delivered (on time or late).
    pub delivered: u64,
    /// Deliveries past the class deadline.
    pub late: u64,
    /// Tail drops at the bounded class queue.
    pub dropped: u64,
    /// Packets still queued when the drain window closed.
    pub in_flight: u64,
    /// Delivered-packet latency, fixed-memory ([`Recording::fixed`]).
    pub latency: Recording,
}

impl ClassReport {
    /// Deadline-miss rate: (late + dropped + stranded) / offered.
    pub fn miss_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        (self.late + self.dropped + self.in_flight) as f64 / self.offered as f64
    }
}

/// One cell's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct CellReport {
    /// Cell index (shard index).
    pub cell: usize,
    /// Total attached UEs.
    pub n_ues: u64,
    /// Per-class outcomes, in serving-priority order.
    pub classes: Vec<ClassReport>,
    /// Peak total queued packets across all class queues.
    pub peak_queue: usize,
    /// Peak pending events on the cell's event queue (stays O(classes)).
    pub peak_events: usize,
    /// DL slots processed (arrival window + drain).
    pub total_slots: u64,
}

impl CellReport {
    /// Packets offered across every class.
    pub fn offered(&self) -> u64 {
        self.classes.iter().map(|c| c.offered).sum()
    }

    /// `true` when every offered packet is accounted for exactly once.
    pub fn conserved(&self) -> bool {
        self.classes.iter().all(|c| c.offered == c.delivered + c.dropped + c.in_flight)
    }

    /// All-class latency recording (commutative histogram merge).
    pub fn latency(&self) -> Recording {
        let mut all = Recording::fixed();
        for c in &self.classes {
            all.merge(&c.latency);
        }
        all
    }

    /// All-class deadline-miss rate.
    pub fn miss_rate(&self) -> f64 {
        let offered: u64 = self.classes.iter().map(|c| c.offered).sum();
        if offered == 0 {
            return 0.0;
        }
        let missed: u64 = self.classes.iter().map(|c| c.late + c.dropped + c.in_flight).sum();
        missed as f64 / offered as f64
    }

    /// Bytes held by this report's recordings — the fixed-memory
    /// assertion hook (everything else in the report is scalar).
    pub fn recording_mem_bytes(&self) -> usize {
        self.classes.iter().map(|c| c.latency.mem_bytes()).sum()
    }
}

/// The whole topology's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct MulticellReport {
    /// One report per cell, in cell order.
    pub cells: Vec<CellReport>,
}

impl MulticellReport {
    /// Aggregate per-class outcomes across every cell (classes are merged
    /// by name; histogram merges are commutative, totals are sums).
    pub fn aggregate_classes(&self) -> Vec<ClassReport> {
        let mut agg: Vec<ClassReport> = Vec::new();
        for cell in &self.cells {
            for c in &cell.classes {
                match agg.iter_mut().find(|a| a.name == c.name) {
                    Some(a) => {
                        a.ues += c.ues;
                        a.offered += c.offered;
                        a.delivered += c.delivered;
                        a.late += c.late;
                        a.dropped += c.dropped;
                        a.in_flight += c.in_flight;
                        a.latency.merge(&c.latency);
                    }
                    None => agg.push(c.clone()),
                }
            }
        }
        agg
    }

    /// Topology-wide latency recording.
    pub fn latency(&self) -> Recording {
        let mut all = Recording::fixed();
        for cell in &self.cells {
            all.merge(&cell.latency());
        }
        all
    }

    /// Topology-wide deadline-miss rate.
    pub fn miss_rate(&self) -> f64 {
        let offered: u64 = self.cells.iter().map(CellReport::offered).sum();
        if offered == 0 {
            return 0.0;
        }
        let missed: f64 = self.cells.iter().map(|c| c.miss_rate() * c.offered() as f64).sum();
        missed / offered as f64
    }

    /// Total recording bytes across the topology.
    pub fn recording_mem_bytes(&self) -> usize {
        self.cells.iter().map(CellReport::recording_mem_bytes).sum()
    }
}

/// Events on one cell's queue: one self-rescheduling aggregate arrival
/// per class, plus the slot clock. The queue never holds more than
/// `classes + 1` events.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Aggregate arrival for class `usize` (index into the sorted mix).
    Arrival(usize),
    /// A DL slot boundary (payload: the global slot index).
    Slot(u64),
}

/// Runs one cell to completion. Pure function of `(config, cell index)` —
/// the shard closure of [`run_multicell`].
fn run_cell(config: &MulticellConfig, cell_idx: usize) -> Result<CellReport, StackError> {
    let stack = &config.stack;
    let cell = &config.cells[cell_idx];
    let rng = SimRng::from_seed(stack.seed).stream_indexed("cell", cell_idx as u64);
    let horizon = Instant::ZERO + config.horizon;
    let drain_limit = horizon + stack.duplex.pattern_period() * 4096;
    let n_ues = cell.n_ues();

    // Serve in priority order; ties broken by config order (stable sort).
    let mut classes: Vec<&UeClass> = cell.classes.iter().collect();
    classes.sort_by_key(|c| c.priority);

    // Each cell runs its own policy instance (round-robin cursors and the
    // like are per-cell state, exactly like a real gNB scheduler's).
    let mut policy = config.policy.build();
    let mut class_seq = 0u64;

    // gNB per-packet work grows with the attached population (§7).
    let decode = {
        let base = stack.gnb_timings.mean_total();
        Duration::from_micros_f64(
            base.as_micros_f64() * (1.0 + config.sched_scaling_per_ue * n_ues as f64),
        )
    };

    // Per-class state: bounded FIFO of arrival instants, arrival sampler,
    // and the outcome counters.
    let mut queues: Vec<std::collections::VecDeque<Instant>> =
        classes.iter().map(|_| std::collections::VecDeque::new()).collect();
    // Bytes of each class's head packet already sent in earlier slots.
    let mut head_sent: Vec<usize> = vec![0; classes.len()];
    let mut reports: Vec<ClassReport> = classes
        .iter()
        .map(|c| ClassReport {
            name: c.name,
            ues: c.count,
            offered: 0,
            delivered: 0,
            late: 0,
            dropped: 0,
            in_flight: 0,
            latency: Recording::fixed(),
        })
        .collect();
    let mut samplers: Vec<(Dist, SimRng)> = classes
        .iter()
        .map(|c| {
            // Aggregate Poisson: n independent rate-λ processes merge into
            // one rate-n·λ process, exactly.
            let mean_us = c.mean_interval.as_micros_f64() / c.count as f64;
            let dist = Dist::Exponential { mean: Duration::from_micros_f64(mean_us) };
            (dist, rng.stream_indexed("class-arrivals", c.priority as u64))
        })
        .collect();

    let mut queue: EventQueue<Ev> = EventQueue::new();
    for (ci, (dist, r)) in samplers.iter_mut().enumerate() {
        let first = Instant::ZERO + dist.sample(r);
        if first < horizon {
            // Arrivals outrank the slot event at the same instant so a
            // packet arriving exactly on a boundary is eligible for it.
            queue.push_with_priority(first, 0, Ev::Arrival(ci));
        }
    }
    let op0 = stack.duplex.next_dl_opportunity(Instant::ZERO);
    queue.push_with_priority(op0.tx_start, 1, Ev::Slot(op0.slot));

    let slot_bytes = stack.slot_capacity_bytes();
    let mut peak_queue = 0usize;
    let mut peak_events = 0usize;
    let mut total_slots = 0u64;

    while let Some((now, ev)) = queue.pop() {
        peak_events = peak_events.max(queue.len() + 1);
        match ev {
            Ev::Arrival(ci) => {
                reports[ci].offered += 1;
                if queues[ci].len() >= config.queue_cap {
                    // Tail drop: the fixed-memory guarantee for cells
                    // offered more than they can serve.
                    reports[ci].dropped += 1;
                } else {
                    queues[ci].push_back(now);
                }
                let (dist, r) = &mut samplers[ci];
                let next = now + dist.sample(r);
                if next < horizon {
                    queue.push_with_priority(next, 0, Ev::Arrival(ci));
                }
            }
            Ev::Slot(slot) => {
                total_slots += 1;
                let mut budget = slot_bytes;
                let mut sent = 0usize;
                // The policy picks this slot's class service order. Each
                // class is one item tagged with its priority, slice, and
                // the head packet's absolute deadline (what EDF keys on).
                let mut order: Vec<SchedItem> = classes
                    .iter()
                    .enumerate()
                    .map(|(ci, class)| SchedItem {
                        rnti: ci as Rnti,
                        bytes: class.packet_bytes + 32,
                        ready: now,
                        tag: RequestTag {
                            priority: class.priority,
                            deadline: queues[ci].front().map(|&a| a + class.deadline),
                            slice: slice_of(class.priority),
                        },
                        seq: class_seq + ci as u64,
                    })
                    .collect();
                class_seq += classes.len() as u64;
                policy.order(now, &mut order);
                for item in &order {
                    let ci = item.rnti as usize;
                    let class = classes[ci];
                    let wire = class.packet_bytes + 32; // layer overheads
                    while budget > 0 {
                        let Some(&arrival) = queues[ci].front() else { break };
                        // RLC segmentation: a packet larger than the
                        // remaining slot budget sends what fits and
                        // resumes next slot (`head_sent` carries over),
                        // so video-sized SDUs span slots instead of
                        // wedging behind a budget they can never meet.
                        let take = (wire - head_sent[ci]).min(budget);
                        budget -= take;
                        sent += take;
                        head_sent[ci] += take;
                        if head_sent[ci] < wire {
                            break; // slot exhausted mid-packet
                        }
                        head_sent[ci] = 0;
                        queues[ci].pop_front();
                        // Delivery: slot TX start + air time of everything
                        // sent so far this slot + population-inflated
                        // decode.
                        let done = now + stack.data_air_time(sent) + decode;
                        let latency = done - arrival;
                        reports[ci].delivered += 1;
                        if latency > class.deadline {
                            reports[ci].late += 1;
                        }
                        reports[ci].latency.record(latency);
                    }
                }
                let depth: usize = queues.iter().map(|q| q.len()).sum();
                peak_queue = peak_queue.max(depth);
                let backlog = depth > 0;
                if !queue.is_empty() || backlog {
                    let after = stack.duplex.slot_start(slot + 1);
                    let op = stack.duplex.next_dl_opportunity(after);
                    if op.tx_start <= drain_limit {
                        queue.push_with_priority(op.tx_start, 1, Ev::Slot(op.slot));
                    } else {
                        // Drain budget exhausted: a wedged cell surfaces
                        // as in_flight > 0, not a hang.
                        break;
                    }
                }
            }
        }
    }

    for (ci, q) in queues.iter().enumerate() {
        reports[ci].in_flight = q.len() as u64;
    }
    let report = CellReport {
        cell: cell_idx,
        n_ues,
        classes: reports,
        peak_queue,
        peak_events,
        total_slots,
    };
    if !report.conserved() {
        return Err(StackError::Diverged(format!(
            "cell {cell_idx} lost packets: offered != delivered + dropped + in_flight"
        )));
    }
    Ok(report)
}

/// Runs every cell, one shard per cell, and assembles the topology
/// report in cell order. Worker-count invariant: cells share no state and
/// each draws from its own indexed RNG stream.
pub fn run_multicell(config: &MulticellConfig) -> Result<MulticellReport, StackError> {
    let outs = sim::parallel::run_shards(config.cells.len(), |i| run_cell(config, i));
    let cells = outs.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(MulticellReport { cells })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MulticellConfig {
        let mut cfg = MulticellConfig::dense_urban(4, 1000, 7);
        cfg.horizon = Duration::from_millis(100);
        cfg
    }

    #[test]
    fn packets_are_conserved_per_class_and_cell() {
        let report = run_multicell(&small()).expect("runs");
        assert_eq!(report.cells.len(), 4);
        for cell in &report.cells {
            assert!(cell.conserved(), "cell {}: {cell:?}", cell.cell);
            assert!(cell.offered() > 0, "cell {} offered nothing", cell.cell);
        }
    }

    #[test]
    fn hotspot_cells_miss_more_than_stable_cells() {
        let report = run_multicell(&small()).expect("runs");
        // dense_urban makes cell 0 a hotspot (ρ=2.0) and cells 1..3
        // stable (ρ=0.55): the overload must show up in the miss rate.
        let hot = report.cells[0].miss_rate();
        let cool = report.cells[1].miss_rate();
        assert!(hot > cool, "hotspot {hot} vs stable {cool}");
        assert!(hot > 0.01, "a cell offered 2x capacity must shed load: {hot}");
    }

    #[test]
    fn priority_protects_urllc_in_hotspots() {
        let report = run_multicell(&small()).expect("runs");
        let hot = &report.cells[0];
        let by_name = |n: &str| hot.classes.iter().find(|c| c.name == n).unwrap();
        // URLLC is served first: even in the overloaded cell its miss
        // rate stays below the best-effort classes'.
        assert!(
            by_name("urllc").miss_rate() < by_name("sensor").miss_rate(),
            "urllc {} vs sensor {}",
            by_name("urllc").miss_rate(),
            by_name("sensor").miss_rate()
        );
    }

    #[test]
    fn deterministic_per_seed_and_worker_count_invariant() {
        let cfg = small();
        sim::parallel::set_jobs(1);
        let a = run_multicell(&cfg).expect("runs");
        sim::parallel::set_jobs(2);
        let b = run_multicell(&cfg).expect("runs");
        sim::parallel::set_jobs(0);
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.offered(), cb.offered());
            assert_eq!(ca.latency(), cb.latency());
            for (ka, kb) in ca.classes.iter().zip(&cb.classes) {
                assert_eq!(ka.latency, kb.latency, "cell {} class {}", ca.cell, ka.name);
            }
        }
    }

    #[test]
    fn explicit_priority_policy_matches_the_default() {
        // The class list is pre-sorted by priority, so the FCFS identity
        // and an explicit stable priority sort are the same permutation:
        // the reports must agree exactly.
        let mut p = small();
        p.policy = PolicySpec::NonPreemptivePriority;
        let a = run_multicell(&small()).expect("runs");
        let b = run_multicell(&p).expect("runs");
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            for (ka, kb) in ca.classes.iter().zip(&cb.classes) {
                assert_eq!(ka.latency, kb.latency, "cell {} class {}", ca.cell, ka.name);
                assert_eq!(
                    (ka.offered, ka.delivered, ka.late, ka.dropped),
                    (kb.offered, kb.delivered, kb.late, kb.dropped)
                );
            }
        }
    }

    #[test]
    fn round_robin_reorders_hotspot_service() {
        let mut rr = small();
        rr.policy = PolicySpec::RoundRobin;
        let base = run_multicell(&small()).expect("runs");
        let alt = run_multicell(&rr).expect("runs");
        let by =
            |cell: &CellReport, n: &str| cell.classes.iter().find(|c| c.name == n).unwrap().clone();
        // Rotating the head of line hands sensors air time URLLC used to
        // claim first: in the saturated hotspot URLLC can only do worse.
        assert!(by(&alt.cells[0], "urllc").miss_rate() >= by(&base.cells[0], "urllc").miss_rate());
        // And the rotation must actually change some class outcome.
        assert!(alt.cells.iter().zip(&base.cells).any(|(x, y)| x
            .classes
            .iter()
            .zip(&y.classes)
            .any(|(cx, cy)| cx.latency != cy.latency)));
        for cell in &alt.cells {
            assert!(cell.conserved(), "cell {}: {cell:?}", cell.cell);
        }
    }

    #[test]
    fn event_queue_stays_tiny_regardless_of_population() {
        // The aggregation collapse: 100× the UEs, same pending-event
        // bound (classes + 1).
        let small_pop = run_multicell(&{
            let mut c = MulticellConfig::dense_urban(2, 1000, 3);
            c.horizon = Duration::from_millis(50);
            c
        })
        .expect("runs");
        let large_pop = run_multicell(&{
            let mut c = MulticellConfig::dense_urban(2, 100_000, 3);
            c.horizon = Duration::from_millis(50);
            c
        })
        .expect("runs");
        for r in small_pop.cells.iter().chain(&large_pop.cells) {
            assert!(r.peak_events <= 4, "events ballooned: {}", r.peak_events);
        }
        assert!(large_pop.cells[0].n_ues >= 100_000);
    }
}
