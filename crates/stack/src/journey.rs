//! Per-stage latency traces: the paper's Fig 2 (journey steps) and Fig 3
//! (temporal breakdown), as data.

use serde::Serialize;
use sim::{Duration, Instant};

/// One stage of a packet's journey, with its time span.
///
/// (`Serialize`-only: labels are `&'static str` drawn from the Fig 3
/// vocabulary, so traces are emitted to reports but never read back.)
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct StageSpan {
    /// Stage label, using the paper's Fig 3 vocabulary (`APP↓`, `SR wait`,
    /// `SCHE`, `↑MAC↓`, `MAC↑`, `SDAP↓`, `PHY↑`, `Radio`, ...).
    pub label: &'static str,
    /// Stage start.
    pub start: Instant,
    /// Stage end.
    pub end: Instant,
}

thread_local! {
    /// Spans created with `end < start` since the last
    /// [`take_inverted_spans`] drain. Thread-local so parallel sweep
    /// shards (one shard per thread) each tally their own inversions.
    static INVERTED_SPANS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Drains this thread's inverted-span tally (returns it, resets to zero).
///
/// The experiment driver folds the tally into the `journey/span_inverted`
/// telemetry counter per ping, so a fault-path inversion degrades one trace
/// instead of aborting an entire release sweep.
pub fn take_inverted_spans() -> u64 {
    INVERTED_SPANS.with(|c| c.replace(0))
}

impl StageSpan {
    /// Creates a span. An inverted span (`end < start`, which only a buggy
    /// fault/recovery path can produce) is clamped to zero width at `start`
    /// and tallied for the `journey/span_inverted` telemetry counter rather
    /// than panicking.
    pub fn new(label: &'static str, start: Instant, end: Instant) -> StageSpan {
        if end < start {
            INVERTED_SPANS.with(|c| c.set(c.get() + 1));
            return StageSpan { label, start, end: start };
        }
        StageSpan { label, start, end }
    }

    /// Stage duration.
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }
}

/// The full trace of one ping round trip.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct PingTrace {
    /// Ping identifier.
    pub id: u64,
    /// Uplink (request) stages, in order.
    pub ul: Vec<StageSpan>,
    /// Downlink (reply) stages, in order.
    pub dl: Vec<StageSpan>,
}

impl PingTrace {
    /// Creates an empty trace.
    pub fn new(id: u64) -> PingTrace {
        PingTrace { id, ul: Vec::new(), dl: Vec::new() }
    }

    /// Total uplink latency (first stage start to last stage end).
    pub fn ul_latency(&self) -> Duration {
        span_total(&self.ul)
    }

    /// Total downlink latency.
    pub fn dl_latency(&self) -> Duration {
        span_total(&self.dl)
    }

    /// Round-trip time.
    pub fn rtt(&self) -> Duration {
        if self.ul.is_empty() || self.dl.is_empty() {
            return Duration::ZERO;
        }
        self.dl.last().expect("non-empty").end - self.ul.first().expect("non-empty").start
    }

    /// Renders the trace as an ASCII timeline (one line per stage) — the
    /// `repro fig3` output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let origin = match self.ul.first() {
            Some(s) => s.start,
            None => return out,
        };
        out.push_str(&format!("ping #{} — uplink (request)\n", self.id));
        render_side(&mut out, &self.ul, origin);
        out.push_str("downlink (reply)\n");
        render_side(&mut out, &self.dl, origin);
        out.push_str(&format!(
            "one-way UL {:>10}   one-way DL {:>10}   RTT {:>10}\n",
            format!("{}", self.ul_latency()),
            format!("{}", self.dl_latency()),
            format!("{}", self.rtt()),
        ));
        out
    }
}

fn span_total(spans: &[StageSpan]) -> Duration {
    match (spans.first(), spans.last()) {
        (Some(a), Some(b)) => b.end - a.start,
        _ => Duration::ZERO,
    }
}

fn render_side(out: &mut String, spans: &[StageSpan], origin: Instant) {
    for s in spans {
        let from = s.start - origin;
        let to = s.end - origin;
        out.push_str(&format!(
            "  {:<14} {:>10} → {:>10}  ({:>9})\n",
            s.label,
            format!("{from}"),
            format!("{to}"),
            format!("{}", s.duration()),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> Instant {
        Instant::from_micros(v)
    }

    #[test]
    fn totals_and_rtt() {
        let mut t = PingTrace::new(1);
        t.ul.push(StageSpan::new("APP↓", us(0), us(50)));
        t.ul.push(StageSpan::new("UL data", us(500), us(600)));
        t.dl.push(StageSpan::new("SDAP↓", us(650), us(700)));
        t.dl.push(StageSpan::new("PHY↑", us(1_200), us(1_300)));
        assert_eq!(t.ul_latency(), Duration::from_micros(600));
        assert_eq!(t.dl_latency(), Duration::from_micros(650));
        assert_eq!(t.rtt(), Duration::from_micros(1_300));
    }

    #[test]
    fn empty_trace_is_zero() {
        let t = PingTrace::new(0);
        assert_eq!(t.ul_latency(), Duration::ZERO);
        assert_eq!(t.rtt(), Duration::ZERO);
        assert_eq!(t.render(), "");
    }

    #[test]
    fn render_contains_stages_and_totals() {
        let mut t = PingTrace::new(3);
        t.ul.push(StageSpan::new("APP↓", us(0), us(10)));
        t.dl.push(StageSpan::new("PHY↑", us(20), us(30)));
        let r = t.render();
        assert!(r.contains("APP↓"));
        assert!(r.contains("PHY↑"));
        assert!(r.contains("RTT"));
        assert!(r.contains("ping #3"));
    }

    #[test]
    fn inverted_span_clamps_to_start_and_is_counted() {
        take_inverted_spans(); // drain any tally left by sibling tests
        let s = StageSpan::new("bad", us(10), us(5));
        assert_eq!(s.start, us(10));
        assert_eq!(s.end, us(10));
        assert_eq!(s.duration(), Duration::ZERO);
        assert_eq!(take_inverted_spans(), 1);
        // Drained: the counter resets, and well-formed spans don't tally.
        let _ = StageSpan::new("ok", us(5), us(10));
        assert_eq!(take_inverted_spans(), 0);
    }
}
