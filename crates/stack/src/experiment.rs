//! The end-to-end ping experiment: the paper's §7 demonstration as code.
//!
//! Each ping follows Fig 2/Fig 3 exactly:
//!
//! 1. the UE builds the request and walks it down APP→SDAP→PDCP→RLC (①);
//! 2. grant-based: the UE waits for a UL slot, sends an SR (②), the gNB
//!    decodes it, the per-slot scheduler issues a grant in the next slot
//!    (③–⑤), the UE prepares and transmits in the granted UL slot (⑥);
//!    grant-free: the UE transmits at the next UL opportunity directly;
//! 3. the gNB radio, PHY and MAC↑ recover the packet, SDAP hands it to
//!    GTP-U/UPF and the data network (⑦);
//! 4. the reply retraces the path: gNB SDAP↓ (⑧), the RLC queue until the
//!    next scheduling round (⑨ — Table 2's RLC-q), the DL slot (⑩), and
//!    the UE's PHY↑ walk (⑪).
//!
//! Every PDU is actually encoded and decoded (see [`crate::node`]); the
//! experiment asserts byte-exact delivery and counts radio-deadline misses.

use bytes::Bytes;
use radio::{RadioHead, TxRing};
use ran::sched::{AccessMode, Rnti, Scheduler};
use ran::sr::SrProcedure;
use serde::{Deserialize, Serialize};
use sim::{
    Dist, Duration, FaultAttribution, FaultInjector, FaultKind, Instant, LatencyRecorder,
    PingFaultTrace, SimRng, StreamingStats, Summary,
};

use crate::config::StackConfig;
use crate::journey::{PingTrace, StageSpan};
use crate::node::{GnbStack, UeStack};

/// gNB-side per-layer statistics (Table 2).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LayerStats {
    /// SDAP processing, µs.
    pub sdap: StreamingStats,
    /// PDCP processing, µs.
    pub pdcp: StreamingStats,
    /// RLC processing, µs.
    pub rlc: StreamingStats,
    /// RLC queue wait (DL data awaiting its scheduled slot), µs.
    pub rlcq: StreamingStats,
    /// MAC processing, µs.
    pub mac: StreamingStats,
    /// PHY processing, µs.
    pub phy: StreamingStats,
}

/// A radio-link failure: one transport block exhausted both its HARQ and
/// its RLC AM retransmission budgets, and the ping it carried is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct RlfEvent {
    /// Which ping died.
    pub ping: u64,
    /// `true` when the downlink leg failed (uplink otherwise).
    pub dl: bool,
    /// The fault that dominated the doomed ping, if any.
    pub dominant: Option<FaultKind>,
}

/// The output of a ping experiment (`Serialize`-only, like the traces it
/// carries).
#[derive(Debug, Clone, Default, Serialize)]
pub struct ExperimentResult {
    /// One-way uplink latency (UE application → data network).
    pub ul: LatencyRecorder,
    /// One-way downlink latency (data network → UE application).
    pub dl: LatencyRecorder,
    /// Round-trip time.
    pub rtt: LatencyRecorder,
    /// gNB per-layer statistics (Table 2).
    pub layers: LayerStats,
    /// Radio deadline outcomes on the gNB downlink path (§6).
    pub underruns: u64,
    /// Grants the UE could not meet in time (processing overran the
    /// scheduler's assumption, §4).
    pub missed_grants: u64,
    /// Packets whose decoded bytes did not match what was sent (must stay
    /// zero on a lossless channel).
    pub integrity_failures: u64,
    /// HARQ retransmissions triggered by channel loss (0 when the
    /// configuration has no channel model).
    pub harq_retx: u64,
    /// Transport blocks abandoned after exhausting the HARQ budget.
    pub harq_failures: u64,
    /// SR transmissions repeated because the PUCCH was lost (injected).
    pub sr_retx: u64,
    /// SR exhaustion events recovered through the four-step RACH.
    pub rach_recoveries: u64,
    /// UL grants the scheduler withheld (injected starvation).
    pub grants_withheld: u64,
    /// Spurious HARQ retransmissions from corrupted ACK feedback.
    pub spurious_harq_retx: u64,
    /// RLC AM recovery rounds entered after HARQ budget exhaustion.
    pub rlc_escalations: u64,
    /// Radio-link failures (pings lost after every recovery budget).
    pub rlf: Vec<RlfEvent>,
    /// Per-ping deadline classification with fault attribution.
    pub attribution: FaultAttribution,
    /// Traces of the first few pings (Fig 3).
    pub traces: Vec<PingTrace>,
}

impl ExperimentResult {
    /// Convenience: UL summary.
    pub fn ul_summary(&mut self) -> Summary {
        self.ul.summary()
    }

    /// Convenience: DL summary.
    pub fn dl_summary(&mut self) -> Summary {
        self.dl.summary()
    }
}

/// The experiment driver.
pub struct PingExperiment {
    config: StackConfig,
    link: Option<channel::Fr1Link>,
    sched: Scheduler,
    ue: UeStack,
    gnb: GnbStack,
    gnb_radio: RadioHead,
    ue_radio: RadioHead,
    ring: TxRing,
    rng_arrival: SimRng,
    rng_gnb: SimRng,
    rng_ue: SimRng,
    rng_net: SimRng,
    injector: FaultInjector,
    traces_wanted: usize,
}

/// The UE's RNTI and address in every experiment.
const RNTI: Rnti = 17;
const UE_ADDR: u32 = 0x0A00_0001;
const KEY: u64 = 0x005E_C2E7;
/// Bound on scheduling retries per ping (grant withholding / starvation);
/// a ping that cannot be scheduled within this many rounds is lost.
const MAX_SCHED_ROUNDS: u32 = 64;

/// Outcome of one HARQ cycle over a transport block.
struct HarqCycle {
    /// Delay the retransmissions added.
    extra: Duration,
    /// Whether the block got through within the HARQ budget.
    delivered: bool,
    /// Whether the injected burst overlay (rather than the base channel)
    /// caused at least one of the losses.
    burst_caused: bool,
}

impl PingExperiment {
    /// Builds an experiment from a configuration.
    pub fn new(config: StackConfig) -> PingExperiment {
        let master = SimRng::from_seed(config.seed);
        let mut gnb = GnbStack::new();
        gnb.attach_ue(RNTI, KEY, UE_ADDR);
        PingExperiment {
            link: config.link.map(channel::Fr1Link::new),
            sched: Scheduler::new(config.scheduler_config()),
            ue: UeStack::new(RNTI, KEY),
            gnb_radio: RadioHead::new(config.gnb_radio.clone()),
            ue_radio: RadioHead::new(config.ue_radio.clone()),
            ring: TxRing::new(),
            rng_arrival: master.stream("arrivals"),
            rng_gnb: master.stream("gnb"),
            rng_ue: master.stream("ue"),
            rng_net: master.stream("net"),
            injector: FaultInjector::new(&config.faults, &master),
            traces_wanted: 3,
            gnb,
            config,
        }
    }

    /// How many ping traces to keep (default 3).
    pub fn keep_traces(&mut self, n: usize) {
        self.traces_wanted = n;
    }

    /// Runs `n` pings with the default inter-ping spacing of five pattern
    /// periods (sparse, as in the paper's testbed).
    pub fn run(&mut self, n: u64) -> ExperimentResult {
        let spacing = self.config.duplex.pattern_period() * 5;
        self.run_spaced(n, spacing)
    }

    /// Runs `n` pings, one per `spacing`, each arriving uniformly within
    /// the pattern period (§7: "packets are uniformly generated within the
    /// pattern").
    pub fn run_spaced(&mut self, n: u64, spacing: Duration) -> ExperimentResult {
        let mut result = ExperimentResult::default();
        let period = self.config.duplex.pattern_period();
        let offset_dist = Dist::Uniform { lo: Duration::ZERO, hi: period };
        for i in 0..n {
            let base = Instant::ZERO + spacing * i + period; // skip slot 0 warm-up
            let arrival = base + offset_dist.sample(&mut self.rng_arrival);
            self.one_ping(i, arrival, &mut result);
        }
        result.underruns = self.ring.stats().underruns;
        result
    }

    fn sample_gnb(&mut self, which: fn(&ran::timing::LayerTimings) -> &Dist) -> Duration {
        which(&self.config.gnb_timings).sample(&mut self.rng_gnb)
    }

    fn sample_ue(&mut self, which: fn(&ran::timing::LayerTimings) -> &Dist) -> Duration {
        which(&self.config.ue_timings).sample(&mut self.rng_ue)
    }

    /// Finds the first uplink opportunity the UE can actually make: samples
    /// at the radio (`samples_ready + submit`) before the air time, and —
    /// when a grant pinned the resources — no earlier than the granted
    /// slot.
    fn ul_tx_start(
        &mut self,
        samples_ready: Instant,
        submit: Duration,
        not_before_slot: Option<u64>,
        misses: &mut u64,
    ) -> Instant {
        let mut probe = match not_before_slot {
            Some(slot) => self.config.duplex.slot_start(slot),
            None => samples_ready,
        };
        loop {
            let op = self.config.duplex.next_ul_opportunity(probe);
            if samples_ready + submit <= op.tx_start {
                return op.tx_start;
            }
            *misses += 1;
            probe = self.config.duplex.slot_start(op.slot + 1);
        }
    }

    /// Plays out one HARQ cycle for a data transmission: samples channel
    /// loss (base SNR/PER draw plus the injected burst overlay) per
    /// attempt; each retransmission costs one HARQ round trip.
    fn harq_cycle(
        &mut self,
        dl_data: bool,
        result: &mut ExperimentResult,
        ftrace: &mut PingFaultTrace,
    ) -> HarqCycle {
        let channel_faulty =
            self.injector.channel_burst_active() || self.injector.harq_feedback_active();
        if self.link.is_none() && !channel_faulty {
            return HarqCycle { extra: Duration::ZERO, delivered: true, burst_caused: false };
        }
        let rtt =
            ran::harq::harq_round_trip(&self.config.duplex, dl_data, Duration::from_micros(50));
        let mut extra = Duration::ZERO;
        let mut burst_caused = false;
        for attempt in 1..=self.config.harq_max_tx {
            let base_lost = match self.link.as_mut() {
                Some(link) => link.packet_lost(&mut self.rng_net),
                None => false,
            };
            let burst_lost = self.injector.channel_loss();
            if !base_lost && !burst_lost {
                // Delivered. An ACK corrupted into a NACK retransmits a
                // block the receiver already has: capacity wasted, but the
                // delivery time of *this* packet is unaffected.
                if self.injector.harq_feedback_corrupted() {
                    result.spurious_harq_retx += 1;
                    ftrace.record(FaultKind::HarqFeedback, Duration::ZERO);
                }
                return HarqCycle { extra, delivered: true, burst_caused };
            }
            if burst_lost && !base_lost {
                burst_caused = true;
            }
            if attempt == self.config.harq_max_tx {
                result.harq_failures += 1;
            } else {
                result.harq_retx += 1;
                extra += rtt;
                if burst_lost && !base_lost {
                    ftrace.record(FaultKind::ChannelBurst, rtt);
                }
            }
        }
        HarqCycle { extra, delivered: false, burst_caused }
    }

    /// Delivers one transport block end to end: HARQ first, then RLC AM
    /// escalation rounds (each a status round trip plus a fresh HARQ
    /// cycle) when the HARQ budget runs out, radio link failure when the
    /// RLC budget is exhausted too. Returns the extra delay, `None` on RLF.
    fn data_delivery(
        &mut self,
        dl_data: bool,
        result: &mut ExperimentResult,
        ftrace: &mut PingFaultTrace,
    ) -> Option<Duration> {
        let mut extra = Duration::ZERO;
        for round in 0..=self.config.rlc_max_retx {
            let cycle = self.harq_cycle(dl_data, result, ftrace);
            extra += cycle.extra;
            if cycle.delivered {
                return Some(extra);
            }
            if round == self.config.rlc_max_retx {
                break;
            }
            // The receiver's next status report NACKs the SN and the
            // sender retransmits through a fresh HARQ cycle.
            result.rlc_escalations += 1;
            let recovery = ran::harq::rlc_recovery_round_trip(
                &self.config.duplex,
                dl_data,
                Duration::from_micros(50),
            );
            extra += recovery;
            if cycle.burst_caused {
                ftrace.record(FaultKind::ChannelBurst, recovery);
            }
        }
        None
    }

    fn one_ping(&mut self, id: u64, t0: Instant, result: &mut ExperimentResult) {
        let mut trace = PingTrace::new(id);
        let mut ftrace = PingFaultTrace::new();
        let payload = Bytes::from(make_payload(id, self.config.payload_bytes));
        let cfg = self.config.clone();
        let nu = cfg.duplex.numerology();

        // ---------- UPLINK (request) ----------
        // ① APP↓: UE walks the packet down to the RLC queue.
        let ue_upper =
            self.sample_ue(|t| &t.sdap) + self.sample_ue(|t| &t.pdcp) + self.sample_ue(|t| &t.rlc);
        let in_rlc = t0 + ue_upper;
        trace.ul.push(StageSpan::new("APP↓", t0, in_rlc));

        // Build the actual MAC PDU(s) now (content is time-independent).
        let grant_bytes = cfg.grant_bytes();
        let mac_pdus = self.ue.encode_uplink(&payload, grant_bytes).expect("uplink encode");
        let mac_pdu = mac_pdus[0].clone();
        let ul_samples = self.ue.phy_sample_count(mac_pdu.len());

        // ② SR → ⑤ grant (grant-based only). The outcome of this block is
        // `(samples_ready, granted_slot)`: when samples are at the UE PHY
        // and, for granted access, which slot the resources live in. The UE
        // MAC/PHY preparation is pipelined with the protocol waits — the
        // modem builds the transport block while waiting for its slot.
        let ue_phy = self.sample_ue(|t| &t.phy);
        let ue_submit = self.ue_radio.tx_radio_latency(ul_samples as u64, &mut self.rng_ue);
        let (samples_ready, granted_slot) = match cfg.access {
            AccessMode::GrantFree => {
                // UE MAC prepares the transmission directly.
                let mac_t = self.sample_ue(|t| &t.mac);
                (in_rlc + mac_t + ue_phy, None)
            }
            AccessMode::GrantBased => {
                // SR transmits at UL opportunities until the gNB hears one.
                // A PUCCH loss (injected) costs one opportunity per retry;
                // sr-TransMax exhaustion falls back to the four-step RACH
                // (TS 38.321 §5.4.4), whose Msg3 carries the buffer status.
                let sr_air = nu.symbol_offset(1); // one-symbol PUCCH SR
                let mut sr_proc = SrProcedure::new(cfg.sr);
                sr_proc.trigger(in_rlc);
                let mut probe = in_rlc;
                let mut sr_ready = None;
                while sr_ready.is_none() {
                    let sr_op = cfg.duplex.next_ul_opportunity(probe);
                    if sr_proc.maybe_transmit(sr_op.slot, sr_op.tx_start) {
                        if self.injector.sr_lost() {
                            let next = cfg
                                .duplex
                                .next_ul_opportunity(cfg.duplex.slot_start(sr_op.slot + 1));
                            ftrace.record(FaultKind::SrLoss, next.tx_start - sr_op.tx_start);
                            result.sr_retx += 1;
                            probe = cfg.duplex.slot_start(sr_op.slot + 1);
                            continue;
                        }
                        let sr_rx = sr_op.tx_start + sr_air;
                        trace.ul.push(StageSpan::new("wait UL slot", in_rlc, sr_op.tx_start));
                        trace.ul.push(StageSpan::new("SR", sr_op.tx_start, sr_rx));
                        // gNB decodes the SR: PHY + MAC.
                        let d_phy = self.sample_gnb(|t| &t.phy);
                        let d_mac = self.sample_gnb(|t| &t.mac);
                        result.layers.phy.push(d_phy.as_micros_f64());
                        result.layers.mac.push(d_mac.as_micros_f64());
                        let ready = sr_rx + d_phy + d_mac;
                        trace.ul.push(StageSpan::new("SR decode", sr_rx, ready));
                        sr_ready = Some(ready);
                    } else if sr_proc.needs_rach() {
                        let giving_up = sr_op.tx_start;
                        match ran::rach::recovery_latency(
                            &cfg.rach,
                            giving_up,
                            1,
                            self.injector.recovery_rng(),
                        ) {
                            Some(lat) => {
                                result.rach_recoveries += 1;
                                ftrace.record(FaultKind::SrLoss, lat);
                                trace.ul.push(StageSpan::new("RACH", giving_up, giving_up + lat));
                                sr_proc.on_rach_complete();
                                sr_ready = Some(giving_up + lat);
                            }
                            None => {
                                // Random access failed too: the UE never
                                // regains uplink access for this packet.
                                result.attribution.record_lost(ftrace.dominant());
                                if result.traces.len() < self.traces_wanted {
                                    result.traces.push(trace);
                                }
                                return;
                            }
                        }
                    } else {
                        probe = cfg.duplex.slot_start(sr_op.slot + 1);
                    }
                }
                let sr_ready = sr_ready.expect("loop exits with a value");
                // Scheduling happens once per slot: next boundary. A
                // withheld grant (injected starvation) is a DCI the UE
                // never decodes; the gNB re-grants once the slot goes
                // unused.
                self.sched.on_sr(RNTI, sr_ready);
                let mut boundary_slot = cfg.duplex.slot_index_at(sr_ready) + 1;
                let mut grant = None;
                let mut first_withheld: Option<Instant> = None;
                for _ in 0..MAX_SCHED_ROUNDS {
                    let decision = self.sched.run_slot(boundary_slot);
                    let Some(g) = decision.ul_grants.first().copied() else {
                        boundary_slot += 1;
                        continue;
                    };
                    if self.injector.grant_withheld() {
                        result.grants_withheld += 1;
                        first_withheld = first_withheld.or(Some(g.grant_tx));
                        let retry = cfg.duplex.slot_start(g.ul.slot + 1);
                        self.sched.on_sr(RNTI, retry);
                        boundary_slot = cfg.duplex.slot_index_at(retry) + 1;
                        continue;
                    }
                    grant = Some(g);
                    break;
                }
                let Some(grant) = grant else {
                    // Starved out of the scheduler entirely.
                    ftrace.record(
                        FaultKind::GrantWithheld,
                        cfg.duplex.slot_start(boundary_slot) - first_withheld.unwrap_or(sr_ready),
                    );
                    result.attribution.record_lost(ftrace.dominant());
                    if result.traces.len() < self.traces_wanted {
                        result.traces.push(trace);
                    }
                    return;
                };
                if let Some(first) = first_withheld {
                    ftrace.record(FaultKind::GrantWithheld, grant.grant_tx - first);
                }
                trace.ul.push(StageSpan::new(
                    "SCHE",
                    sr_ready,
                    cfg.duplex.slot_start(boundary_slot),
                ));
                let dci_air = nu.symbol_offset(2); // two-symbol CORESET
                let grant_rx = grant.grant_tx + dci_air;
                trace.ul.push(StageSpan::new("UL grant", grant.grant_tx, grant_rx));
                // UE decodes the grant and prepares (MAC + PHY).
                let prep = self.sample_ue(|t| &t.mac);
                let ue_ready = grant_rx + prep + ue_phy;
                trace.ul.push(StageSpan::new("UE prep", grant_rx, ue_ready));
                (ue_ready, Some(grant.ul.slot))
            }
        };

        // ⑥ Transmit the UL data in the granted/next reachable opportunity.
        let tx_start =
            self.ul_tx_start(samples_ready, ue_submit, granted_slot, &mut result.missed_grants);
        trace.ul.push(StageSpan::new("wait UL slot", samples_ready.min(tx_start), tx_start));
        let air = cfg.data_air_time(mac_pdu.len());
        let tx_end = tx_start + air;
        trace.ul.push(StageSpan::new("UL data", tx_start, tx_end));

        // ⑦ gNB receives: radio, PHY, MAC↑, RLC, PDCP, SDAP, then GTP-U.
        // Channel loss first costs HARQ rounds (§8's retransmission
        // steps), then RLC AM escalations, then — with every budget
        // exhausted — the packet is simply gone (radio link failure).
        let Some(harq_extra) = self.data_delivery(false, result, &mut ftrace) else {
            result.rlf.push(RlfEvent { ping: id, dl: false, dominant: ftrace.dominant() });
            result.attribution.record_lost(ftrace.dominant());
            if result.traces.len() < self.traces_wanted {
                result.traces.push(trace);
            }
            return;
        };
        let tx_end = tx_end + harq_extra;
        let rx_radio = self.gnb_radio.rx_radio_latency(ul_samples as u64, &mut self.rng_gnb);
        // An OS-jitter storm on the fronthaul stalls the receive thread.
        let storm = self.injector.storm_delay();
        if storm > Duration::ZERO {
            ftrace.record(FaultKind::JitterStorm, storm);
        }
        let host_rx = tx_end + rx_radio + storm;
        trace.ul.push(StageSpan::new("radio", tx_end, host_rx));
        let d_phy = self.sample_gnb(|t| &t.phy);
        let d_mac = self.sample_gnb(|t| &t.mac);
        let d_rlc = self.sample_gnb(|t| &t.rlc);
        let d_pdcp = self.sample_gnb(|t| &t.pdcp);
        let d_sdap = self.sample_gnb(|t| &t.sdap);
        result.layers.phy.push(d_phy.as_micros_f64());
        result.layers.mac.push(d_mac.as_micros_f64());
        result.layers.rlc.push(d_rlc.as_micros_f64());
        result.layers.pdcp.push(d_pdcp.as_micros_f64());
        result.layers.sdap.push(d_sdap.as_micros_f64());
        let decoded_at = host_rx + d_phy + d_mac + d_rlc + d_pdcp + d_sdap;
        trace.ul.push(StageSpan::new("MAC↑", host_rx, decoded_at));

        // Actually decode the bytes (through PHY samples) and check them.
        let air_samples = self.ue.phy_encode(&mac_pdu);
        let decoded = self
            .gnb
            .phy_decode(RNTI, &air_samples)
            .ok()
            .and_then(|pdu| self.gnb.decode_uplink(RNTI, &pdu).ok());
        let mut delivered_ok = matches!(&decoded, Some(v) if v.first() == Some(&payload));
        // Push any remaining segments through (tiny grants).
        if !delivered_ok {
            if let Some(mut got) = decoded {
                for extra in &mac_pdus[1..] {
                    let s = self.ue.phy_encode(extra);
                    if let Ok(pdu) = self.gnb.phy_decode(RNTI, &s) {
                        if let Ok(more) = self.gnb.decode_uplink(RNTI, &pdu) {
                            got.extend(more);
                        }
                    }
                }
                delivered_ok = got.first() == Some(&payload);
            }
        }
        if !delivered_ok {
            result.integrity_failures += 1;
        }

        let spike = self.injector.backbone_spike();
        if spike > Duration::ZERO {
            ftrace.record(FaultKind::BackboneSpike, spike);
        }
        let net = self.config.backbone.sample(&mut self.rng_net) + spike;
        let ul_done = decoded_at + net;
        trace.ul.push(StageSpan::new("UPF", decoded_at, ul_done));
        result.ul.record(ul_done - t0);

        // ---------- DOWNLINK (reply) ----------
        // ⑧ The server replies immediately; the reply reaches the gNB.
        let dl_t0 = ul_done;
        let spike = self.injector.backbone_spike();
        if spike > Duration::ZERO {
            ftrace.record(FaultKind::BackboneSpike, spike);
        }
        let net = self.config.backbone.sample(&mut self.rng_net) + spike;
        let at_gnb = dl_t0 + net;
        let d_sdap = self.sample_gnb(|t| &t.sdap);
        let d_pdcp = self.sample_gnb(|t| &t.pdcp);
        let d_rlc = self.sample_gnb(|t| &t.rlc);
        result.layers.sdap.push(d_sdap.as_micros_f64());
        result.layers.pdcp.push(d_pdcp.as_micros_f64());
        result.layers.rlc.push(d_rlc.as_micros_f64());
        let in_rlc_q = at_gnb + d_sdap + d_pdcp + d_rlc;
        trace.dl.push(StageSpan::new("SDAP↓", at_gnb, in_rlc_q));

        // Build the DL MAC PDU(s).
        let reply = Bytes::from(make_payload(id | 0x8000_0000_0000_0000, cfg.payload_bytes));
        let (_rnti, dl_pdus) = self
            .gnb
            .encode_downlink(UE_ADDR, &reply, cfg.slot_capacity_bytes())
            .expect("downlink encode");
        let dl_pdu = dl_pdus[0].clone();
        let dl_samples = phy::transport::sample_count(
            phy::transport::ShChConfig { modulation: phy::modulation::Modulation::Qpsk, c_init: 0 },
            dl_pdu.len(),
        );

        // ⑨ RLC queue: wait for the next scheduling round. The MAC pulls
        // the data from the RLC queue when it builds the transport block,
        // which (srsRAN-style) happens one slot before the air time — that
        // pull instant ends the Table 2 "RLC-q" interval.
        self.sched.on_dl_data(RNTI, dl_pdu.len(), in_rlc_q);
        let mut boundary_slot = cfg.duplex.slot_index_at(in_rlc_q) + 1;
        let mut assignment = None;
        for _ in 0..MAX_SCHED_ROUNDS {
            let decision = self.sched.run_slot(boundary_slot);
            if let Some(a) = decision.dl_assignments.first().copied() {
                assignment = Some(a);
                break;
            }
            boundary_slot += 1;
        }
        let Some(assign) = assignment else {
            // The scheduler never served the reply: the ping is lost.
            result.attribution.record_lost(ftrace.dominant());
            if result.traces.len() < self.traces_wanted {
                result.traces.push(trace);
            }
            return;
        };
        let dl_tx = assign.dl.tx_start;
        let decision_time = cfg.duplex.slot_start(boundary_slot);
        // TB construction starts up to two slots before the air time (the
        // slot-ahead build plus the §7 radio-delay slot), never before the
        // scheduling decision itself.
        let tb_build = decision_time.max(dl_tx - cfg.duplex.slot_duration() * 2);
        result.layers.rlcq.push((tb_build - in_rlc_q).as_micros_f64());
        trace.dl.push(StageSpan::new("RLC-q", in_rlc_q, tb_build));

        // ⑩ MAC/PHY prepare the slot and submit samples to the radio; they
        // must beat the air time (§4's margin, §6's reliability risk).
        let d_mac = self.sample_gnb(|t| &t.mac);
        let d_phy = self.sample_gnb(|t| &t.phy);
        result.layers.mac.push(d_mac.as_micros_f64());
        result.layers.phy.push(d_phy.as_micros_f64());
        let submit = self.gnb_radio.tx_radio_latency(dl_samples as u64, &mut self.rng_gnb);
        // A fronthaul storm stalls the submission thread — exactly the §4
        // failure mode: samples that miss their slot corrupt it.
        let storm = self.injector.storm_delay();
        let samples_at_rh = tb_build + d_mac + d_phy + submit + storm;
        let outcome = self.ring.submit(samples_at_rh, dl_tx);
        let dl_tx = if outcome.is_on_time() {
            if storm > Duration::ZERO {
                ftrace.record(FaultKind::JitterStorm, Duration::ZERO);
            }
            dl_tx
        } else {
            // Underrun: the slot is corrupted; retransmit at the next DL
            // opportunity the samples can make.
            let retry = cfg.duplex.next_dl_opportunity(samples_at_rh).tx_start;
            if storm > Duration::ZERO {
                ftrace.record(FaultKind::JitterStorm, retry - dl_tx);
            }
            retry
        };
        let air = cfg.data_air_time(dl_pdu.len());
        let Some(dl_extra) = self.data_delivery(true, result, &mut ftrace) else {
            result.rlf.push(RlfEvent { ping: id, dl: true, dominant: ftrace.dominant() });
            result.attribution.record_lost(ftrace.dominant());
            if result.traces.len() < self.traces_wanted {
                result.traces.push(trace);
            }
            return;
        };
        let dl_rx_end = dl_tx + air + dl_extra;
        trace.dl.push(StageSpan::new("DL data", dl_tx, dl_rx_end));

        // ⑪ UE receives and walks the packet up to the application.
        let ue_rx_radio = self.ue_radio.rx_radio_latency(dl_samples as u64, &mut self.rng_ue);
        let ue_phy = self.sample_ue(|t| &t.phy);
        let ue_upper =
            self.sample_ue(|t| &t.rlc) + self.sample_ue(|t| &t.pdcp) + self.sample_ue(|t| &t.sdap);
        let delivered = dl_rx_end + ue_rx_radio + ue_phy + ue_upper;
        trace.dl.push(StageSpan::new("PHY↑", dl_rx_end, delivered));

        // Decode the actual bytes.
        let air_samples = self.gnb.phy_encode(RNTI, &dl_pdu);
        let got = self
            .ue
            .phy_decode(&air_samples)
            .ok()
            .and_then(|pdu| self.ue.decode_downlink(&pdu).ok());
        let mut ok = matches!(&got, Some(v) if v.first() == Some(&reply));
        if !ok {
            if let Some(mut v) = got {
                for extra in &dl_pdus[1..] {
                    let s = self.gnb.phy_encode(RNTI, extra);
                    if let Ok(pdu) = self.ue.phy_decode(&s) {
                        if let Ok(more) = self.ue.decode_downlink(&pdu) {
                            v.extend(more);
                        }
                    }
                }
                ok = v.first() == Some(&reply);
            }
        }
        if !ok {
            result.integrity_failures += 1;
        }

        result.dl.record(delivered - dl_t0);
        let rtt = delivered - t0;
        result.rtt.record(rtt);
        result.attribution.record_delivered(rtt <= cfg.deadline, ftrace.dominant());
        if result.traces.len() < self.traces_wanted {
            result.traces.push(trace);
        }
    }
}

/// Deterministic ICMP-echo-like payload for ping `id`.
fn make_payload(id: u64, len: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(len);
    v.extend_from_slice(&id.to_be_bytes());
    while v.len() < len {
        v.push((v.len() as u8).wrapping_mul(31) ^ id as u8);
    }
    v.truncate(len.max(8));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use ran::sched::AccessMode;

    #[test]
    fn testbed_grant_free_runs_clean() {
        let cfg = StackConfig::testbed_dddu(AccessMode::GrantFree, true).with_seed(1);
        let mut exp = PingExperiment::new(cfg);
        let mut res = exp.run(200);
        assert_eq!(res.integrity_failures, 0);
        assert_eq!(res.ul.count(), 200);
        assert_eq!(res.dl.count(), 200);
        // Latencies are in the millisecond regime of Fig 6.
        let ul = res.ul_summary();
        assert!(ul.mean_us > 500.0 && ul.mean_us < 8_000.0, "UL mean {}", ul.mean_us);
    }

    #[test]
    fn grant_based_is_slower_than_grant_free() {
        let gb = {
            let cfg = StackConfig::testbed_dddu(AccessMode::GrantBased, true).with_seed(2);
            let mut exp = PingExperiment::new(cfg);
            let mut r = exp.run(300);
            r.ul_summary().mean_us
        };
        let gf = {
            let cfg = StackConfig::testbed_dddu(AccessMode::GrantFree, true).with_seed(2);
            let mut exp = PingExperiment::new(cfg);
            let mut r = exp.run(300);
            r.ul_summary().mean_us
        };
        // §7: the SR/grant handshake adds roughly one TDD period (2 ms).
        assert!(
            gb > gf + 1_000.0,
            "grant-based {gb} µs should exceed grant-free {gf} µs by ~one period"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let cfg = StackConfig::testbed_dddu(AccessMode::GrantBased, false).with_seed(seed);
            let mut exp = PingExperiment::new(cfg);
            let mut r = exp.run(50);
            (r.ul_summary(), r.dl_summary())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn layer_stats_match_table2_calibration() {
        let cfg = StackConfig::testbed_dddu(AccessMode::GrantFree, true).with_seed(3);
        let mut exp = PingExperiment::new(cfg);
        let res = exp.run(500);
        // Means land near Table 2 (generous tolerances; these are samples).
        assert!((res.layers.sdap.mean() - 4.65).abs() < 1.5, "SDAP {}", res.layers.sdap.mean());
        assert!((res.layers.pdcp.mean() - 8.29).abs() < 2.0, "PDCP {}", res.layers.pdcp.mean());
        assert!((res.layers.mac.mean() - 55.21).abs() < 5.0, "MAC {}", res.layers.mac.mean());
        assert!((res.layers.phy.mean() - 41.55).abs() < 5.0, "PHY {}", res.layers.phy.mean());
        // RLC-q dominates everything else by an order of magnitude (the
        // paper's central Table 2 observation).
        assert!(
            res.layers.rlcq.mean() > 10.0 * res.layers.rlc.mean(),
            "RLC-q {}",
            res.layers.rlcq.mean()
        );
        assert!(res.layers.rlcq.mean() > 300.0, "RLC-q {}", res.layers.rlcq.mean());
    }

    #[test]
    fn traces_cover_the_fig2_stages() {
        let cfg = StackConfig::testbed_dddu(AccessMode::GrantBased, true).with_seed(4);
        let mut exp = PingExperiment::new(cfg);
        let res = exp.run(3);
        assert_eq!(res.traces.len(), 3);
        let t = &res.traces[0];
        let labels: Vec<&str> = t.ul.iter().map(|s| s.label).collect();
        assert!(labels.contains(&"APP↓"));
        assert!(labels.contains(&"SR"));
        assert!(labels.contains(&"SCHE"));
        assert!(labels.contains(&"UL grant"));
        assert!(labels.contains(&"UL data"));
        let dl_labels: Vec<&str> = t.dl.iter().map(|s| s.label).collect();
        assert!(dl_labels.contains(&"RLC-q"));
        assert!(dl_labels.contains(&"DL data"));
        assert!(dl_labels.contains(&"PHY↑"));
        // Stages are time-ordered.
        for w in t.ul.windows(2) {
            assert!(w[1].start >= w[0].start);
        }
    }

    #[test]
    fn lossy_channel_adds_quantised_harq_steps() {
        let clean = {
            let cfg = StackConfig::testbed_dddu(AccessMode::GrantFree, true).with_seed(6);
            let mut exp = PingExperiment::new(cfg);
            let mut res = exp.run(400);
            assert_eq!(res.harq_retx, 0);
            res.ul_summary().mean_us
        };
        let mut cfg = StackConfig::testbed_dddu(AccessMode::GrantFree, true).with_seed(6);
        cfg.link = Some(channel::Fr1LinkConfig::cell_edge());
        let mut exp = PingExperiment::new(cfg);
        let mut res = exp.run(400);
        assert!(res.harq_retx > 50, "cell edge should trigger retx: {}", res.harq_retx);
        let lossy = res.ul_summary().mean_us;
        // Each retransmission costs one HARQ round trip (~2+ ms on DDDU),
        // so the mean shifts upward measurably.
        assert!(lossy > clean + 200.0, "lossy {lossy} vs clean {clean}");
        // A good indoor link barely changes anything.
        let mut cfg = StackConfig::testbed_dddu(AccessMode::GrantFree, true).with_seed(6);
        cfg.link = Some(channel::Fr1LinkConfig::indoor_good());
        let mut exp = PingExperiment::new(cfg);
        let mut res = exp.run(400);
        let good = res.ul_summary().mean_us;
        assert!((good - clean).abs() < 200.0, "good {good} vs clean {clean}");
    }

    #[test]
    fn ideal_dm_config_meets_urllc_most_of_the_time() {
        let cfg = StackConfig::ideal_urllc_dm().with_seed(5);
        let mut exp = PingExperiment::new(cfg);
        let mut res = exp.run(500);
        assert_eq!(res.integrity_failures, 0);
        // §5: the DM grant-free design has a 0.5 ms worst case *before*
        // processing; with realistic processing the bulk of packets should
        // land under ~1 ms and far below the testbed's numbers.
        let ul = res.ul_summary();
        assert!(ul.mean_us < 1_000.0, "ideal UL mean {}", ul.mean_us);
        let frac = res.ul.fraction_within(Duration::from_millis(1));
        assert!(frac > 0.9, "sub-1ms fraction {frac}");
    }
}
