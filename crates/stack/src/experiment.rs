//! The end-to-end ping experiment: the paper's §7 demonstration as code.
//!
//! Each ping follows Fig 2/Fig 3 exactly:
//!
//! 1. the UE builds the request and walks it down APP→SDAP→PDCP→RLC (①);
//! 2. grant-based: the UE waits for a UL slot, sends an SR (②), the gNB
//!    decodes it, the per-slot scheduler issues a grant in the next slot
//!    (③–⑤), the UE prepares and transmits in the granted UL slot (⑥);
//!    grant-free: the UE transmits at the next UL opportunity directly;
//! 3. the gNB radio, PHY and MAC↑ recover the packet, SDAP hands it to
//!    GTP-U/UPF and the data network (⑦);
//! 4. the reply retraces the path: gNB SDAP↓ (⑧), the RLC queue until the
//!    next scheduling round (⑨ — Table 2's RLC-q), the DL slot (⑩), and
//!    the UE's PHY↑ walk (⑪).
//!
//! Every PDU is actually encoded and decoded (see [`crate::node`]); the
//! experiment asserts byte-exact delivery and counts radio-deadline misses.

use bytes::Bytes;
use corenet::{plan_crossing, PathEvent, PathSupervisor};
use radio::{RadioHead, TxRing};
use ran::sched::{Rnti, Scheduler};
use ran::RrcEntity;
use serde::{Deserialize, Serialize};
use sim::{
    Dist, Duration, EventQueue, FaultAttribution, FaultInjector, FaultKind, Instant,
    LatencyRecorder, PingFaultTrace, SimRng, StreamingStats, Summary,
};

use telemetry::{
    ExemplarOutcome, ExemplarSpan, JournalEvent, Profiler, TailExemplar, Telemetry,
    TelemetrySummary,
};

use crate::config::StackConfig;
use crate::journey::{PingTrace, StageSpan};
use crate::node::{GnbStack, UeStack};
use crate::pipeline::{HopChain, HopFx, HopOutcome, PingCtx, PingEvent, Side};
use crate::stage_labels as labels;

/// gNB-side per-layer statistics (Table 2).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LayerStats {
    /// SDAP processing, µs.
    pub sdap: StreamingStats,
    /// PDCP processing, µs.
    pub pdcp: StreamingStats,
    /// RLC processing, µs.
    pub rlc: StreamingStats,
    /// RLC queue wait (DL data awaiting its scheduled slot), µs.
    pub rlcq: StreamingStats,
    /// MAC processing, µs.
    pub mac: StreamingStats,
    /// PHY processing, µs.
    pub phy: StreamingStats,
}

impl LayerStats {
    /// Welford-merges every per-layer accumulator (shard reduction).
    pub fn merge(&mut self, other: &LayerStats) {
        self.sdap.merge(&other.sdap);
        self.pdcp.merge(&other.pdcp);
        self.rlc.merge(&other.rlc);
        self.rlcq.merge(&other.rlcq);
        self.mac.merge(&other.mac);
        self.phy.merge(&other.phy);
    }
}

/// A radio-link failure: one transport block exhausted both its HARQ and
/// its RLC AM retransmission budgets. The connection-recovery layer then
/// attempts RRC re-establishment; `recovered` records whether the ping
/// survived through the recovery detour instead of being dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct RlfEvent {
    /// Which ping hit the failure.
    pub ping: u64,
    /// `true` when the downlink leg failed (uplink otherwise).
    pub dl: bool,
    /// The fault that dominated the doomed ping, if any.
    pub dominant: Option<FaultKind>,
    /// Whether RRC re-establishment brought the connection back (the ping
    /// continued over the recovered link; `false` means it was lost).
    pub recovered: bool,
}

/// The output of a ping experiment (`Serialize`-only, like the traces it
/// carries).
#[derive(Debug, Clone, Default, Serialize)]
pub struct ExperimentResult {
    /// One-way uplink latency (UE application → data network).
    pub ul: LatencyRecorder,
    /// One-way downlink latency (data network → UE application).
    pub dl: LatencyRecorder,
    /// Round-trip time.
    pub rtt: LatencyRecorder,
    /// gNB per-layer statistics (Table 2).
    pub layers: LayerStats,
    /// Radio deadline outcomes on the gNB downlink path (§6).
    pub underruns: u64,
    /// Grants the UE could not meet in time (processing overran the
    /// scheduler's assumption, §4).
    pub missed_grants: u64,
    /// Packets whose decoded bytes did not match what was sent (must stay
    /// zero on a lossless channel).
    pub integrity_failures: u64,
    /// HARQ retransmissions triggered by channel loss (0 when the
    /// configuration has no channel model).
    pub harq_retx: u64,
    /// Transport blocks abandoned after exhausting the HARQ budget.
    pub harq_failures: u64,
    /// SR transmissions repeated because the PUCCH was lost (injected).
    pub sr_retx: u64,
    /// SR exhaustion events recovered through the four-step RACH.
    pub rach_recoveries: u64,
    /// UL grants the scheduler withheld (injected starvation).
    pub grants_withheld: u64,
    /// Spurious HARQ retransmissions from corrupted ACK feedback.
    pub spurious_harq_retx: u64,
    /// RLC AM recovery rounds entered after HARQ budget exhaustion.
    pub rlc_escalations: u64,
    /// Radio-link failures (recovered or not — see [`RlfEvent::recovered`]).
    pub rlf: Vec<RlfEvent>,
    /// RLF events consumed by a successful RRC re-establishment.
    pub recovered: u64,
    /// Recovery detours: RLF declared → the recovered block finally
    /// delivered (detect + RACH + reestablish + PDCP recovery), one sample
    /// per recovery.
    pub recovery: LatencyRecorder,
    /// Recoveries that failed (re-establishment or RACH budget spent); the
    /// ping is then genuinely lost.
    pub recovery_failures: u64,
    /// Primary-path failovers completed by GTP-U path supervision.
    pub path_failovers: u64,
    /// GTP-U echo probes (sent, lost) by the path supervisor.
    pub path_probes: (u64, u64),
    /// Supervision transitions (probe losses, path-down declarations,
    /// failovers, restorations), in order.
    pub path_events: Vec<PathEvent>,
    /// Per-ping deadline classification with fault attribution.
    pub attribution: FaultAttribution,
    /// Traces of the first few pings (Fig 3).
    pub traces: Vec<PingTrace>,
    /// What telemetry collection saw (all-default when the run was dark).
    pub telemetry: TelemetrySummary,
}

impl ExperimentResult {
    /// Convenience: UL summary.
    pub fn ul_summary(&mut self) -> Summary {
        self.ul.summary()
    }

    /// Convenience: DL summary.
    pub fn dl_summary(&mut self) -> Summary {
        self.dl.summary()
    }

    /// Folds another shard's result into this one. Recorders concatenate,
    /// streaming statistics Welford-merge, counters add, and event lists
    /// append — so a reducer folding shards in index order produces one
    /// result whose totals match a sequential pass over the same shards,
    /// regardless of how many workers raced to produce them. `telemetry`
    /// is left untouched: the parallel runner summarises its absorbed sink
    /// once, after the fold.
    pub fn merge(&mut self, other: ExperimentResult) {
        self.ul.merge(&other.ul);
        self.dl.merge(&other.dl);
        self.rtt.merge(&other.rtt);
        self.layers.merge(&other.layers);
        self.underruns += other.underruns;
        self.missed_grants += other.missed_grants;
        self.integrity_failures += other.integrity_failures;
        self.harq_retx += other.harq_retx;
        self.harq_failures += other.harq_failures;
        self.sr_retx += other.sr_retx;
        self.rach_recoveries += other.rach_recoveries;
        self.grants_withheld += other.grants_withheld;
        self.spurious_harq_retx += other.spurious_harq_retx;
        self.rlc_escalations += other.rlc_escalations;
        self.rlf.extend(other.rlf);
        self.recovered += other.recovered;
        self.recovery.merge(&other.recovery);
        self.recovery_failures += other.recovery_failures;
        self.path_failovers += other.path_failovers;
        self.path_probes.0 += other.path_probes.0;
        self.path_probes.1 += other.path_probes.1;
        self.path_events.extend(other.path_events);
        self.attribution.merge(&other.attribution);
        self.traces.extend(other.traces);
    }
}

/// The experiment driver: owns the layer entities, the per-stream RNGs
/// and the shared event queue; the per-ping walk itself lives in the
/// [`crate::pipeline`] hop chain.
pub struct PingExperiment {
    pub(crate) config: StackConfig,
    /// O(1) slot-pattern lookups for `config.duplex`, built once per
    /// experiment instead of re-walking the pattern on every ping.
    pub(crate) timing: phy::duplex::SlotTiming,
    /// Cached HARQ round trips (`[dl, ul]`): pure functions of the duplex
    /// pattern, formerly re-derived per HARQ cycle.
    pub(crate) harq_rtt: [Duration; 2],
    /// Cached RLC AM status round trips (`[dl, ul]`).
    pub(crate) rlc_rtt: [Duration; 2],
    pub(crate) link: Option<channel::Fr1Link>,
    pub(crate) sched: Scheduler,
    pub(crate) ue: UeStack,
    pub(crate) gnb: GnbStack,
    pub(crate) gnb_radio: RadioHead,
    pub(crate) ue_radio: RadioHead,
    pub(crate) ring: TxRing,
    pub(crate) rng_arrival: SimRng,
    pub(crate) rng_gnb: SimRng,
    pub(crate) rng_ue: SimRng,
    pub(crate) rng_net: SimRng,
    pub(crate) injector: FaultInjector,
    pub(crate) rrc: RrcEntity,
    pub(crate) supervisor: PathSupervisor,
    pub(crate) traces_wanted: usize,
    pub(crate) tel: Telemetry,
    /// Host wall-time profiler (disabled by default; never touches sim
    /// state, so profiled and dark runs stay bit-identical).
    pub(crate) prof: Profiler,
    /// The shared future-event queue every ping episode drains.
    pub(crate) events: EventQueue<PingEvent>,
    /// Sequence number of the ping currently in flight (journal context).
    pub(crate) ping: u64,
}

/// The UE's RNTI and address in every experiment.
pub(crate) const RNTI: Rnti = 17;
pub(crate) const UE_ADDR: u32 = 0x0A00_0001;
const KEY: u64 = 0x005E_C2E7;
/// Bound on scheduling retries per ping (grant withholding / starvation);
/// a ping that cannot be scheduled within this many rounds is lost.
pub(crate) const MAX_SCHED_ROUNDS: u32 = 64;

/// Outcome of one HARQ cycle over a transport block.
struct HarqCycle {
    /// Delay the retransmissions added.
    extra: Duration,
    /// Whether the block got through within the HARQ budget.
    delivered: bool,
    /// Whether the injected burst overlay (rather than the base channel)
    /// caused at least one of the losses.
    burst_caused: bool,
}

impl PingExperiment {
    /// Builds an experiment from a configuration.
    pub fn new(config: StackConfig) -> PingExperiment {
        let master = SimRng::from_seed(config.seed);
        let mut gnb = GnbStack::new();
        gnb.attach_ue(RNTI, KEY, UE_ADDR);
        let fb = Duration::from_micros(50);
        PingExperiment {
            timing: config.duplex.timing(),
            harq_rtt: [
                ran::harq::harq_round_trip(&config.duplex, true, fb),
                ran::harq::harq_round_trip(&config.duplex, false, fb),
            ],
            rlc_rtt: [
                ran::harq::rlc_recovery_round_trip(&config.duplex, true, fb),
                ran::harq::rlc_recovery_round_trip(&config.duplex, false, fb),
            ],
            link: config.link.map(channel::Fr1Link::new),
            sched: Scheduler::new(config.scheduler_config()),
            ue: UeStack::new(RNTI, KEY),
            gnb_radio: RadioHead::new(config.gnb_radio.clone()),
            ue_radio: RadioHead::new(config.ue_radio.clone()),
            ring: TxRing::new(),
            rng_arrival: master.stream("arrivals"),
            rng_gnb: master.stream("gnb"),
            rng_ue: master.stream("ue"),
            rng_net: master.stream("net"),
            injector: FaultInjector::new(&config.faults, &master),
            rrc: RrcEntity::new(config.rrc, config.rach),
            supervisor: PathSupervisor::new(config.supervision),
            traces_wanted: 3,
            tel: Telemetry::disabled(),
            prof: Profiler::disabled(),
            events: EventQueue::new(),
            ping: 0,
            gnb,
            config,
        }
    }

    /// How many ping traces to keep (default 3).
    pub fn keep_traces(&mut self, n: usize) {
        self.traces_wanted = n;
    }

    /// Builds an experiment that records into `tel`.
    pub fn new_instrumented(config: StackConfig, tel: Telemetry) -> PingExperiment {
        let mut exp = PingExperiment::new(config);
        exp.attach_telemetry(tel);
        exp
    }

    /// Attaches a telemetry handle, propagating it to every layer entity
    /// (UE/gNB stacks, radio heads, TX ring, path supervisor, RRC, the
    /// channel model). Recording consumes no RNG draws and no simulated
    /// time, so an instrumented run and a dark run produce bit-identical
    /// results.
    pub fn attach_telemetry(&mut self, tel: Telemetry) {
        self.ue.set_telemetry(tel.clone());
        self.gnb.set_telemetry(tel.clone());
        self.gnb_radio.set_telemetry(tel.clone());
        self.ue_radio.set_telemetry(tel.clone());
        self.ring.set_telemetry(tel.clone());
        self.supervisor.set_telemetry(tel.clone());
        self.rrc.set_telemetry(tel.clone());
        if let Some(link) = self.link.as_mut() {
            link.set_telemetry(tel.clone());
        }
        self.tel = tel;
    }

    /// The attached telemetry handle (disabled unless
    /// [`attach_telemetry`](Self::attach_telemetry) ran).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Attaches a host wall-time profiler: the event driver opens one
    /// scope per hop dispatch, keyed by [`crate::HopId::name`]. The
    /// profiler reads only the host clock — no RNG draws, no sim time —
    /// so profiled and dark runs stay bit-identical.
    pub fn attach_profiler(&mut self, prof: Profiler) {
        self.prof = prof;
    }

    /// Runs `n` pings with the default inter-ping spacing of five pattern
    /// periods (sparse, as in the paper's testbed).
    pub fn run(&mut self, n: u64) -> ExperimentResult {
        let spacing = self.config.duplex.pattern_period() * 5;
        self.run_spaced(n, spacing)
    }

    /// Runs `n` pings, one per `spacing`, each arriving uniformly within
    /// the pattern period (§7: "packets are uniformly generated within the
    /// pattern").
    pub fn run_spaced(&mut self, n: u64, spacing: Duration) -> ExperimentResult {
        self.run_span(0, n, spacing)
    }

    /// Runs pings `start..start + len` of a global schedule: ping `i`
    /// keeps the arrival slot it would have in a full run (`spacing · i`),
    /// so slot indices, journal timestamps and ping ids stay globally
    /// consistent when a parallel run merges batch results.
    fn run_span(&mut self, start: u64, len: u64, spacing: Duration) -> ExperimentResult {
        let mut result = ExperimentResult::default();
        let chain = HopChain::standard();
        let period = self.config.duplex.pattern_period();
        let offset_dist = Dist::Uniform { lo: Duration::ZERO, hi: period };
        for i in start..start + len {
            let base = Instant::ZERO + spacing * i + period; // skip slot 0 warm-up
            let arrival = base + offset_dist.sample(&mut self.rng_arrival);
            self.one_ping(&chain, i, arrival, &mut result);
        }
        result.underruns = self.ring.stats().underruns;
        result.path_failovers = self.supervisor.failovers();
        result.path_probes = self.supervisor.probe_stats();
        result.path_events = self.supervisor.events().to_vec();
        result.telemetry = self.tel.summary();
        result
    }

    pub(crate) fn sample_gnb(
        &mut self,
        which: fn(&ran::timing::LayerTimings) -> &Dist,
    ) -> Duration {
        which(&self.config.gnb_timings).sample(&mut self.rng_gnb)
    }

    pub(crate) fn sample_ue(&mut self, which: fn(&ran::timing::LayerTimings) -> &Dist) -> Duration {
        which(&self.config.ue_timings).sample(&mut self.rng_ue)
    }

    /// Finds the first uplink opportunity the UE can actually make: samples
    /// at the radio (`samples_ready + submit`) before the air time, and —
    /// when a grant pinned the resources — no earlier than the granted
    /// slot.
    pub(crate) fn ul_tx_start(
        &mut self,
        samples_ready: Instant,
        submit: Duration,
        not_before_slot: Option<u64>,
        misses: &mut u64,
    ) -> Instant {
        let mut probe = match not_before_slot {
            Some(slot) => self.timing.slot_start(slot),
            None => samples_ready,
        };
        loop {
            let op = self.timing.next_ul_opportunity(probe);
            if samples_ready + submit <= op.tx_start {
                return op.tx_start;
            }
            *misses += 1;
            probe = self.timing.slot_start(op.slot + 1);
        }
    }

    /// Plays out one HARQ cycle for a data transmission: samples channel
    /// loss (base SNR/PER draw plus the injected burst overlay) per
    /// attempt; each retransmission costs one HARQ round trip.
    fn harq_cycle(
        &mut self,
        dl_data: bool,
        at: Instant,
        result: &mut ExperimentResult,
        ftrace: &mut PingFaultTrace,
    ) -> HarqCycle {
        let channel_faulty =
            self.injector.channel_burst_active() || self.injector.harq_feedback_active();
        if self.link.is_none() && !channel_faulty {
            return HarqCycle { extra: Duration::ZERO, delivered: true, burst_caused: false };
        }
        let rtt = self.harq_rtt[usize::from(!dl_data)];
        let mut extra = Duration::ZERO;
        let mut burst_caused = false;
        for attempt in 1..=self.config.harq_max_tx {
            let base_lost = match self.link.as_mut() {
                Some(link) => link.packet_lost(&mut self.rng_net),
                None => false,
            };
            let burst_lost = self.injector.channel_loss();
            if !base_lost && !burst_lost {
                // Delivered. An ACK corrupted into a NACK retransmits a
                // block the receiver already has: capacity wasted, but the
                // delivery time of *this* packet is unaffected.
                if self.injector.harq_feedback_corrupted() {
                    result.spurious_harq_retx += 1;
                    self.tel.count("mac", "spurious_harq_retx", 1);
                    ftrace.record(FaultKind::HarqFeedback, Duration::ZERO);
                }
                return HarqCycle { extra, delivered: true, burst_caused };
            }
            if burst_lost && !base_lost {
                burst_caused = true;
            }
            if attempt == self.config.harq_max_tx {
                result.harq_failures += 1;
                self.tel.count("mac", "harq_failures", 1);
            } else {
                result.harq_retx += 1;
                extra += rtt;
                self.tel.count("mac", "harq_retx", 1);
                self.tel.journal(JournalEvent::HarqNack {
                    ping: self.ping,
                    dl: dl_data,
                    round: attempt,
                    at: at + extra,
                });
                if burst_lost && !base_lost {
                    ftrace.record(FaultKind::ChannelBurst, rtt);
                }
            }
        }
        HarqCycle { extra, delivered: false, burst_caused }
    }

    /// Delivers one transport block end to end: HARQ first, then RLC AM
    /// escalation rounds (each a status round trip plus a fresh HARQ
    /// cycle) when the HARQ budget runs out, radio link failure when the
    /// RLC budget is exhausted too. Returns the extra delay on success;
    /// on RLF, the time wasted before the budgets ran dry.
    pub(crate) fn data_delivery(
        &mut self,
        dl_data: bool,
        at: Instant,
        result: &mut ExperimentResult,
        ftrace: &mut PingFaultTrace,
    ) -> Result<Duration, Duration> {
        let mut extra = Duration::ZERO;
        for round in 0..=self.config.rlc_max_retx {
            let cycle = self.harq_cycle(dl_data, at + extra, result, ftrace);
            extra += cycle.extra;
            if cycle.delivered {
                return Ok(extra);
            }
            if round == self.config.rlc_max_retx {
                break;
            }
            // The receiver's next status report NACKs the SN and the
            // sender retransmits through a fresh HARQ cycle.
            result.rlc_escalations += 1;
            self.tel.count("rlc", "am_retx_rounds", 1);
            let recovery = self.rlc_rtt[usize::from(!dl_data)];
            extra += recovery;
            if cycle.burst_caused {
                ftrace.record(FaultKind::ChannelBurst, recovery);
            }
        }
        Err(extra)
    }

    /// Consumes a radio-link failure declared at `at`: RRC
    /// re-establishment (detect → RACH re-access carrying the C-RNTI MAC
    /// CE → reestablishment processing), RLC re-establishment on both
    /// peers, and the PDCP status-report exchange that retransmits the
    /// in-flight SDUs with their original COUNTs. Returns the instant the
    /// re-established link can carry the retransmission, the start of the
    /// data-recovery exchange (for the "PDCP recover" trace span), and the
    /// fresh MAC PDUs; `None` when the connection could not come back.
    pub(crate) fn recover_rlf(
        &mut self,
        dl: bool,
        at: Instant,
        grant_bytes: usize,
        spans: &mut Vec<StageSpan>,
        result: &mut ExperimentResult,
    ) -> Option<(Instant, Instant, Vec<Bytes>)> {
        let Some(timeline) = self.rrc.recover(at, self.injector.recovery_rng()) else {
            result.recovery_failures += 1;
            self.tel.journal(JournalEvent::RrcReestablished { ping: self.ping, at, ok: false });
            return None;
        };
        // Msg1/Msg3 of the re-access ride the same air interface: age the
        // injected burst chain by those two transmissions so the
        // post-recovery retry sees the channel the RACH just crossed.
        self.injector.channel_advance(2);
        // Msg3 carries the C-RNTI MAC CE (TS 38.321 §6.1.3.2) so the gNB
        // can match the old context — exchanged as real bytes.
        let ce = ran::mac::encode_c_rnti(RNTI);
        if ran::mac::decode_c_rnti(&ce).ok() != Some(RNTI) {
            result.integrity_failures += 1;
        }
        let detected = at + timeline.detect;
        let reaccessed = detected + timeline.rach;
        let reestablished = reaccessed + timeline.reestablish;
        spans.push(StageSpan::new(labels::RLF_DETECT, at, detected));
        spans.push(StageSpan::new(labels::RACH_REACCESS, detected, reaccessed));
        spans.push(StageSpan::new(labels::RRC_REESTABLISH, reaccessed, reestablished));
        self.tel.journal(JournalEvent::RrcReestablished {
            ping: self.ping,
            at: reestablished,
            ok: true,
        });
        // Both peers re-establish RLC; the receiver's PDCP status report
        // drives the sender's data recovery over real bytes, preserving SN
        // continuity. The exchange costs one status round trip on the
        // fresh link before the retransmission can fly.
        let pdus = if dl {
            let report = self.ue.reestablish_downlink();
            self.gnb.recover_downlink(RNTI, &report, grant_bytes)
        } else {
            self.gnb
                .reestablish_uplink(RNTI)
                .and_then(|report| self.ue.recover_uplink(&report, grant_bytes))
        };
        let pdus = match pdus {
            Ok(p) if !p.is_empty() => p,
            _ => {
                result.integrity_failures += 1;
                result.recovery_failures += 1;
                return None;
            }
        };
        let status_rtt = self.rlc_rtt[usize::from(!dl)];
        result.recovered += 1;
        Some((reestablished + status_rtt, reestablished, pdus))
    }

    /// One N3 traversal under GTP-U path supervision: the injected path
    /// process decides whether the primary is forwarding, the supervisor
    /// charges the probe/backoff detection sequence to the traversal that
    /// discovers an outage, and the chosen link's latency is sampled —
    /// exactly one `rng_net` draw either way, so fault-free runs stay
    /// byte-identical to the unsupervised baseline.
    pub(crate) fn backbone_traverse(
        &mut self,
        at: Instant,
        result: &mut ExperimentResult,
        ftrace: &mut PingFaultTrace,
    ) -> Duration {
        let primary_down = self.injector.path_down();
        let plan = plan_crossing(
            &mut self.supervisor,
            at,
            primary_down,
            &self.config.backbone,
            self.config.backup_backbone.as_ref(),
        );
        if plan.discovered_outage() {
            ftrace.record(FaultKind::PathFailure, plan.detection);
            self.tel.record("corenet", "detection_us", plan.detection);
            self.tel.journal(JournalEvent::FaultInjected {
                kind: FaultKind::PathFailure,
                at,
                extra: plan.detection,
            });
            // Validate the freshly adopted path with a real GTP-U echo
            // round trip through the UPF (type 1 → type 2, sequence
            // echoed).
            if !self.supervisor.confirm_path(self.gnb.upf_mut()) {
                result.integrity_failures += 1;
            }
        }
        let n3 = plan.link.sample(&mut self.rng_net);
        self.tel.record("corenet", "n3_us", n3);
        plan.detection + n3
    }

    /// One ping episode on the shared event queue: seed the arrival,
    /// then pop-and-dispatch through the hop chain until the walk
    /// declares the ping delivered or lost. The driver is the single
    /// scheduler (hops only *return* emissions) and the single span
    /// journaler, so cross-cutting effects stay in one place.
    fn one_ping(&mut self, chain: &HopChain, id: u64, t0: Instant, result: &mut ExperimentResult) {
        self.ping = id;
        let mut ctx = PingCtx::new(id, t0);
        self.events.clear();
        self.events.rewind(t0);
        self.events.push(t0, PingEvent::Arrival);
        // Cheap handle clone so the scope guard can borrow it while the
        // dispatch takes `&mut self`. Inert when no profiler is attached.
        let prof = self.prof.clone();
        let mut lost = false;
        let mut max_depth = self.events.len();
        while let Some((at, ev)) = self.events.pop() {
            let mut fx = HopFx::new();
            {
                // Dispatches are non-reentrant, so elapsed == self-time.
                let _hop_time = prof.scope(ev.hop().name());
                chain.dispatch(self, &mut ctx, result, at, ev, &mut fx);
            }
            for (side, span) in fx.spans {
                match side {
                    Side::Ul => ctx.trace.ul.push(span),
                    Side::Dl => ctx.trace.dl.push(span),
                }
            }
            for (t, e) in fx.emits {
                self.events.push(t, e);
            }
            max_depth = max_depth.max(self.events.len());
            match fx.outcome {
                HopOutcome::Continue => {}
                HopOutcome::Lost => {
                    result.attribution.record_lost(ctx.ftrace.dominant());
                    lost = true;
                    self.events.clear();
                }
                HopOutcome::Done => self.events.clear(),
            }
        }
        // A clamped (inverted) span anywhere in this ping's walk becomes a
        // telemetry counter instead of a panic; never recorded when zero.
        let inverted = crate::journey::take_inverted_spans();
        if inverted > 0 {
            self.tel.count("journey", "span_inverted", inverted);
        }
        // Journal the journey (every ping, not just the kept traces: the
        // ring buffer decides what survives).
        if self.tel.is_enabled() {
            for s in &ctx.trace.ul {
                self.tel.journal_stage(id, false, s.label, s.start, s.end);
            }
            for s in &ctx.trace.dl {
                self.tel.journal_stage(id, true, s.label, s.start, s.end);
            }
        }
        // Hand the full forensic record to the flight recorder: worst-K
        // retention plus forced retention of every deadline-miss, RLF and
        // lost ping. Pure observation of sim-time state — no RNG draws,
        // no sim-time mutation — so dark runs stay bit-identical.
        if self.tel.is_enabled() {
            let spans = ctx.trace.ul.iter().zip(std::iter::repeat(false));
            let spans = spans.chain(ctx.trace.dl.iter().zip(std::iter::repeat(true)));
            let end = spans.clone().map(|(s, _)| s.end).max().unwrap_or(t0);
            let rtt = end.checked_duration_since(t0).unwrap_or(Duration::ZERO);
            let outcome = if lost {
                ExemplarOutcome::Lost
            } else if rtt > self.config.deadline {
                ExemplarOutcome::Late
            } else {
                ExemplarOutcome::OnTime
            };
            let rlf_hit = spans.clone().any(|(s, _)| s.label == labels::RLF_DETECT);
            let fault = ctx.ftrace.dominant().map(FaultKind::label);
            self.tel.record_with_exemplar("journey", "rtt", rtt, id);
            let exemplar = TailExemplar {
                ping: id,
                rtt,
                outcome,
                fault,
                fault_extra: ctx.ftrace.contributions().map(|(k, d, _)| (k.label(), d)).collect(),
                drop_reason: if lost { Some(fault.unwrap_or("unattributed")) } else { None },
                max_queue_depth: max_depth,
                sched_rounds: ctx.sched_rounds + ctx.dl_sched_rounds,
                spans: spans
                    .map(|(s, dl)| ExemplarSpan { label: s.label, dl, start: s.start, end: s.end })
                    .collect(),
            };
            self.tel.flight_record(exemplar, lost || outcome == ExemplarOutcome::Late || rlf_hit);
        }
        if result.traces.len() < self.traces_wanted {
            result.traces.push(ctx.trace);
        }
    }
}

/// Pings per shard of a parallel run. Fixed: shard boundaries — and the
/// per-shard RNG streams derived from them — depend only on the workload,
/// never on the worker count, which is what makes the merged output
/// bit-identical at any parallelism.
pub const BATCH_PINGS: u64 = 256;

/// Runs `n` pings as independently seeded fixed-size batches
/// ([`BATCH_PINGS`]) fanned across the process-wide worker pool
/// (`sim::parallel`), keeping the default three traces.
///
/// Batch `b` derives its master RNG from
/// `SimRng::from_seed(config.seed).stream_indexed("batch", b)`, so its
/// draws are a pure function of `(config, b)` — results are bit-identical
/// regardless of thread count, though *not* sample-identical to a single
/// sequential [`PingExperiment::run`] of the same seed (the batch
/// structure re-keys the streams).
pub fn run_parallel(config: &StackConfig, n: u64) -> ExperimentResult {
    run_parallel_opts(config, n, 3, None)
}

/// [`run_parallel`] with an explicit trace quota (traces of pings
/// `0..traces` survive the merge, at their ping id's index) and an
/// optional telemetry sink — per-shard sibling sinks are absorbed into
/// `tel` in shard order.
pub fn run_parallel_opts(
    config: &StackConfig,
    n: u64,
    traces: usize,
    tel: Option<&Telemetry>,
) -> ExperimentResult {
    run_sharded(config, n, traces, tel, None, None)
}

/// [`run_parallel_opts`] with a host wall-time [`Profiler`]: each shard
/// records into a profiler sibling (no cross-thread lock contention
/// inflating the measured times) and the reducer folds them back into
/// `prof`. Sim-time results stay bit-identical with or without it.
pub fn run_parallel_profiled(
    config: &StackConfig,
    n: u64,
    traces: usize,
    tel: Option<&Telemetry>,
    prof: Option<&Profiler>,
) -> ExperimentResult {
    run_sharded(config, n, traces, tel, prof, None)
}

/// [`run_parallel_opts`] with an explicit worker count — the determinism
/// suite uses this form to compare 1/2/8 workers without racing the
/// process-wide jobs setting.
pub fn run_parallel_workers(
    config: &StackConfig,
    n: u64,
    traces: usize,
    tel: Option<&Telemetry>,
    workers: usize,
) -> ExperimentResult {
    run_sharded(config, n, traces, tel, None, Some(workers))
}

fn run_sharded(
    config: &StackConfig,
    n: u64,
    traces: usize,
    tel: Option<&Telemetry>,
    prof: Option<&Profiler>,
    workers: Option<usize>,
) -> ExperimentResult {
    let spacing = config.duplex.pattern_period() * 5;
    let ranges = sim::parallel::shard_ranges(n, BATCH_PINGS);
    let run_shard = |b: usize| {
        let (start, len) = ranges[b];
        let seed = SimRng::from_seed(config.seed).stream_indexed("batch", b as u64).seed();
        let mut exp = PingExperiment::new(config.clone().with_seed(seed));
        exp.keep_traces(traces.saturating_sub(start as usize).min(len as usize));
        let shard_tel = tel.map(Telemetry::sibling);
        if let Some(t) = &shard_tel {
            exp.attach_telemetry(t.clone());
        }
        let shard_prof = prof.map(Profiler::sibling);
        if let Some(p) = &shard_prof {
            exp.attach_profiler(p.clone());
        }
        (exp.run_span(start, len, spacing), shard_tel, shard_prof)
    };
    let shards = match workers {
        Some(w) => sim::parallel::run_shards_with(w, ranges.len(), run_shard),
        None => sim::parallel::run_shards(ranges.len(), run_shard),
    };
    let mut result = ExperimentResult::default();
    for (shard, shard_tel, shard_prof) in shards {
        result.merge(shard);
        if let (Some(parent), Some(child)) = (tel, shard_tel.as_ref()) {
            parent.absorb(child);
        }
        if let (Some(parent), Some(child)) = (prof, shard_prof.as_ref()) {
            parent.absorb(child);
        }
    }
    if let Some(t) = tel {
        result.telemetry = t.summary();
    }
    result
}

/// Deterministic ICMP-echo-like payload for ping `id`.
pub(crate) fn make_payload(id: u64, len: usize) -> Bytes {
    let mut v = Vec::with_capacity(len);
    v.extend_from_slice(&id.to_be_bytes());
    while v.len() < len {
        v.push((v.len() as u8).wrapping_mul(31) ^ id as u8);
    }
    v.truncate(len.max(8));
    Bytes::from(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ran::sched::AccessMode;

    #[test]
    fn testbed_grant_free_runs_clean() {
        let cfg = StackConfig::testbed_dddu(AccessMode::GrantFree, true).with_seed(1);
        let mut exp = PingExperiment::new(cfg);
        let mut res = exp.run(200);
        assert_eq!(res.integrity_failures, 0);
        assert_eq!(res.ul.count(), 200);
        assert_eq!(res.dl.count(), 200);
        // Latencies are in the millisecond regime of Fig 6.
        let ul = res.ul_summary();
        assert!(ul.mean_us > 500.0 && ul.mean_us < 8_000.0, "UL mean {}", ul.mean_us);
    }

    #[test]
    fn grant_based_is_slower_than_grant_free() {
        let gb = {
            let cfg = StackConfig::testbed_dddu(AccessMode::GrantBased, true).with_seed(2);
            let mut exp = PingExperiment::new(cfg);
            let mut r = exp.run(300);
            r.ul_summary().mean_us
        };
        let gf = {
            let cfg = StackConfig::testbed_dddu(AccessMode::GrantFree, true).with_seed(2);
            let mut exp = PingExperiment::new(cfg);
            let mut r = exp.run(300);
            r.ul_summary().mean_us
        };
        // §7: the SR/grant handshake adds roughly one TDD period (2 ms).
        assert!(
            gb > gf + 1_000.0,
            "grant-based {gb} µs should exceed grant-free {gf} µs by ~one period"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let cfg = StackConfig::testbed_dddu(AccessMode::GrantBased, false).with_seed(seed);
            let mut exp = PingExperiment::new(cfg);
            let mut r = exp.run(50);
            (r.ul_summary(), r.dl_summary())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn parallel_run_is_worker_count_invariant() {
        // The whole tentpole contract in one assertion: same batch
        // structure, any parallelism, byte-identical samples and counters.
        let cfg = StackConfig::testbed_dddu(AccessMode::GrantBased, true)
            .with_seed(6)
            .with_faults(sim::FaultPlan::chaos(0.2));
        let n = 2 * BATCH_PINGS + 17; // three shards, one ragged
        let base = run_parallel_workers(&cfg, n, 3, None, 1);
        for workers in [2, 8] {
            let res = run_parallel_workers(&cfg, n, 3, None, workers);
            assert_eq!(res.ul.samples_us(), base.ul.samples_us(), "workers={workers}");
            assert_eq!(res.dl.samples_us(), base.dl.samples_us(), "workers={workers}");
            assert_eq!(res.rtt.samples_us(), base.rtt.samples_us(), "workers={workers}");
            assert_eq!(res.attribution, base.attribution, "workers={workers}");
            assert_eq!(res.rlf, base.rlf, "workers={workers}");
            assert_eq!(res.sr_retx, base.sr_retx);
            assert_eq!(res.grants_withheld, base.grants_withheld);
            assert_eq!(res.traces.len(), base.traces.len());
        }
        assert_eq!(base.attribution.total(), n);
        assert_eq!(base.traces.len(), 3);
    }

    #[test]
    fn parallel_trace_quota_spans_shards() {
        let cfg = StackConfig::testbed_dddu(AccessMode::GrantFree, true).with_seed(5);
        let n = BATCH_PINGS + 8;
        let quota = BATCH_PINGS as usize + 5; // forces traces from shard 1
        let res = run_parallel_workers(&cfg, n, quota, None, 2);
        assert_eq!(res.traces.len(), quota);
        // Trace at index i narrates ping i (the recovery report relies on
        // this alignment).
        for (i, t) in res.traces.iter().enumerate() {
            assert_eq!(t.id, i as u64);
        }
    }

    #[test]
    fn parallel_telemetry_reduction_is_worker_count_invariant() {
        let cfg = StackConfig::testbed_dddu(AccessMode::GrantBased, true)
            .with_seed(7)
            .with_faults(sim::FaultPlan::chaos(0.2));
        let run = |workers| {
            let tel = Telemetry::new(4096);
            let res = run_parallel_workers(&cfg, 64, 3, Some(&tel), workers);
            (tel.snapshot(), tel.journal_events().len(), res.telemetry)
        };
        let (snap1, journal1, sum1) = run(1);
        let (snap4, journal4, sum4) = run(4);
        assert_eq!(snap1, snap4);
        assert_eq!(journal1, journal4);
        assert_eq!(sum1, sum4);
        assert!(sum1.enabled && sum1.metric_keys > 0);
    }

    #[test]
    fn layer_stats_match_table2_calibration() {
        let cfg = StackConfig::testbed_dddu(AccessMode::GrantFree, true).with_seed(3);
        let mut exp = PingExperiment::new(cfg);
        let res = exp.run(500);
        // Means land near Table 2 (generous tolerances; these are samples).
        assert!((res.layers.sdap.mean() - 4.65).abs() < 1.5, "SDAP {}", res.layers.sdap.mean());
        assert!((res.layers.pdcp.mean() - 8.29).abs() < 2.0, "PDCP {}", res.layers.pdcp.mean());
        assert!((res.layers.mac.mean() - 55.21).abs() < 5.0, "MAC {}", res.layers.mac.mean());
        assert!((res.layers.phy.mean() - 41.55).abs() < 5.0, "PHY {}", res.layers.phy.mean());
        // RLC-q dominates everything else by an order of magnitude (the
        // paper's central Table 2 observation).
        assert!(
            res.layers.rlcq.mean() > 10.0 * res.layers.rlc.mean(),
            "RLC-q {}",
            res.layers.rlcq.mean()
        );
        assert!(res.layers.rlcq.mean() > 300.0, "RLC-q {}", res.layers.rlcq.mean());
    }

    #[test]
    fn traces_cover_the_fig2_stages() {
        let cfg = StackConfig::testbed_dddu(AccessMode::GrantBased, true).with_seed(4);
        let mut exp = PingExperiment::new(cfg);
        let res = exp.run(3);
        assert_eq!(res.traces.len(), 3);
        let t = &res.traces[0];
        let labels: Vec<&str> = t.ul.iter().map(|s| s.label).collect();
        assert!(labels.contains(&"APP↓"));
        assert!(labels.contains(&"SR"));
        assert!(labels.contains(&"SCHE"));
        assert!(labels.contains(&"UL grant"));
        assert!(labels.contains(&"UL data"));
        let dl_labels: Vec<&str> = t.dl.iter().map(|s| s.label).collect();
        assert!(dl_labels.contains(&"RLC-q"));
        assert!(dl_labels.contains(&"DL data"));
        assert!(dl_labels.contains(&"PHY↑"));
        // Stages are time-ordered.
        for w in t.ul.windows(2) {
            assert!(w[1].start >= w[0].start);
        }
    }

    #[test]
    fn lossy_channel_adds_quantised_harq_steps() {
        let clean = {
            let cfg = StackConfig::testbed_dddu(AccessMode::GrantFree, true).with_seed(6);
            let mut exp = PingExperiment::new(cfg);
            let mut res = exp.run(400);
            assert_eq!(res.harq_retx, 0);
            res.ul_summary().mean_us
        };
        let mut cfg = StackConfig::testbed_dddu(AccessMode::GrantFree, true).with_seed(6);
        cfg.link = Some(channel::Fr1LinkConfig::cell_edge());
        let mut exp = PingExperiment::new(cfg);
        let mut res = exp.run(400);
        assert!(res.harq_retx > 50, "cell edge should trigger retx: {}", res.harq_retx);
        let lossy = res.ul_summary().mean_us;
        // Each retransmission costs one HARQ round trip (~2+ ms on DDDU),
        // so the mean shifts upward measurably.
        assert!(lossy > clean + 200.0, "lossy {lossy} vs clean {clean}");
        // A good indoor link barely changes anything.
        let mut cfg = StackConfig::testbed_dddu(AccessMode::GrantFree, true).with_seed(6);
        cfg.link = Some(channel::Fr1LinkConfig::indoor_good());
        let mut exp = PingExperiment::new(cfg);
        let mut res = exp.run(400);
        let good = res.ul_summary().mean_us;
        assert!((good - clean).abs() < 200.0, "good {good} vs clean {clean}");
    }

    #[test]
    fn rlf_recovery_completes_pings_with_visible_detour() {
        // A burst channel against a starved HARQ/RLC budget: frequent RLF,
        // but with ~50 % exit probability the re-established link usually
        // carries the retransmission through.
        let n = 80u64;
        let mut cfg = StackConfig::testbed_dddu(AccessMode::GrantFree, true).with_seed(21);
        cfg.harq_max_tx = 1;
        cfg.rlc_max_retx = 0;
        cfg.faults.channel_burst = Some(sim::GilbertElliott {
            p_enter_bad: 0.25,
            p_exit_bad: 0.5,
            loss_good: 0.0,
            loss_bad: 1.0,
        });
        let mut exp = PingExperiment::new(cfg);
        exp.keep_traces(n as usize);
        let res = exp.run(n);
        assert!(!res.rlf.is_empty(), "burst plan should trigger RLF");
        assert!(res.recovered > 0, "re-establishment should bring pings back");
        assert_eq!(res.recovery.count(), res.recovered, "one detour sample per recovery");
        // Recovered bytes decode exactly: SN continuity through the
        // re-established bearer, no duplicates, no holes.
        assert_eq!(res.integrity_failures, 0);
        // Every recovered RLF's ping finishes; only unrecovered ones die.
        let unrecovered = res.rlf.iter().filter(|ev| !ev.recovered).count() as u64;
        assert_eq!(res.attribution.lost, unrecovered);
        // The detour is visible in the trace with the recovery spans.
        let labels: Vec<&str> = res
            .traces
            .iter()
            .flat_map(|t| t.ul.iter().chain(t.dl.iter()))
            .map(|s| s.label)
            .collect();
        for needed in ["RLF detect", "RACH re-access", "PDCP recover"] {
            assert!(labels.contains(&needed), "trace must show {needed}");
        }
        // And as latency: every detour at least spans the control-plane
        // legs the RRC entity always charges.
        let rrc = ran::RrcConfig::default();
        let floor = (rrc.detect_delay + rrc.reestablish_processing).as_micros_f64();
        for &us in res.recovery.samples_us() {
            assert!(us >= floor, "detour {us}µs under the control-plane floor");
        }
    }

    #[test]
    fn path_outage_fails_over_to_backup_with_detection_charged_once() {
        let n = 120u64;
        let mut cfg = StackConfig::testbed_dddu(AccessMode::GrantFree, true).with_seed(22);
        cfg.faults.path_failure = Some(sim::PathFailureConfig { enter: 0.2, stay: 0.6 });
        let mut exp = PingExperiment::new(cfg.clone());
        let res = exp.run(n);
        assert!(res.path_failovers > 0, "outages should trigger failover");
        assert_eq!(res.integrity_failures, 0, "echo confirmation must round-trip");
        let (sent, lost) = res.path_probes;
        assert!(sent > lost, "failover confirmations are answered probes");
        // Each failover charges the full detection sequence exactly once.
        let detections =
            res.path_events.iter().filter(|e| e.kind == corenet::PathEventKind::PathDown).count()
                as u64;
        assert_eq!(detections, res.path_failovers);
        assert_eq!(res.ul.count() + res.attribution.lost, n, "no ping silently vanishes");
        // Supervised runs are deterministic.
        let res2 = PingExperiment::new(cfg).run(n);
        assert_eq!(res.path_events, res2.path_events);
        assert_eq!(res.rtt.samples_us(), res2.rtt.samples_us());
    }

    #[test]
    fn ideal_dm_config_meets_urllc_most_of_the_time() {
        let cfg = StackConfig::ideal_urllc_dm().with_seed(5);
        let mut exp = PingExperiment::new(cfg);
        let mut res = exp.run(500);
        assert_eq!(res.integrity_failures, 0);
        // §5: the DM grant-free design has a 0.5 ms worst case *before*
        // processing; with realistic processing the bulk of packets should
        // land under ~1 ms and far below the testbed's numbers.
        let ul = res.ul_summary();
        assert!(ul.mean_us < 1_000.0, "ideal UL mean {}", ul.mean_us);
        let frac = res.ul.fraction_within(Duration::from_millis(1));
        assert!(frac > 0.9, "sub-1ms fraction {frac}");
    }
}
