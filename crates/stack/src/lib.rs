//! # urllc-stack — the composed 5G system
//!
//! This crate wires every substrate together into the system of the paper's
//! Fig 2 — UE application down through SDAP/PDCP/RLC/MAC/PHY, over the
//! radio heads and the air, up the gNB stack, through GTP-U to the UPF —
//! and drives ping round trips through it under a discrete-event clock.
//!
//! * [`config`] — one struct gathering every knob (duplexing, access mode,
//!   processing models, radio heads, backbone), with presets for the
//!   paper's §7 testbed and the §5 ideal URLLC designs;
//! * [`node`] — the UE and gNB protocol stacks: real PDU encode/decode
//!   through every layer (packets are actually built, ciphered, segmented,
//!   multiplexed, modulated — not just delayed);
//! * [`journey`] — per-stage latency traces of a ping (Fig 2's eleven steps
//!   / Fig 3's timeline), with an ASCII renderer;
//! * [`experiment`] — the end-to-end ping experiment: per-direction latency
//!   distributions (Fig 6), per-layer processing statistics (Table 2),
//!   radio deadline bookkeeping (§6 reliability);
//! * [`pipeline`] — the event-driven stage pipeline: the ping walk as a
//!   declarative chain of named hops on one shared `sim::EventQueue`, with
//!   faults and telemetry layered on as decorators;
//! * [`stage_labels`] — the canonical Fig-3 stage vocabulary shared by
//!   traces, telemetry keys and the deadline-budget auditor;
//! * [`multi_ue`] — the §9 scalability experiment: uplink latency and
//!   resource waste as the UE population grows, grant-free vs grant-based;
//! * [`multicell`] — the city-scale N-gNB topology: per-cell event queues
//!   and heterogeneous UE mixes, sharded with cells as the boundary,
//!   recording fixed-memory up to 10⁶ total UEs;
//! * [`coexistence`] — URLLC sharing the downlink with eMBB: queueing vs
//!   preemption (the §1 coexistence literature, on this stack).

pub mod coexistence;
pub mod config;
pub mod experiment;
pub mod handover;
pub mod journey;
pub mod multi_ue;
pub mod multicell;
pub mod node;
pub mod overload;
pub mod pipeline;
pub mod schedlab;
pub mod stage_labels;

pub use coexistence::{coexistence_sweep, CoexistencePoint};
pub use config::{DlPullPoint, StackConfig};
pub use experiment::{
    run_parallel, run_parallel_opts, run_parallel_profiled, run_parallel_workers, ExperimentResult,
    PingExperiment, RlfEvent, BATCH_PINGS,
};
pub use handover::{
    run_mobility, run_mobility_profiled, MobilityConfig, MobilityReport, SignalTrajectory,
};
pub use journey::{PingTrace, StageSpan};
pub use multi_ue::{run_multi_ue, scalability_sweep, MultiUeConfig, MultiUeResult};
pub use multicell::{
    run_multicell, CellConfig, CellReport, ClassReport, MulticellConfig, MulticellReport, UeClass,
};
pub use node::{GnbStack, StackError, UeStack};
pub use overload::{
    run_overload, run_overload_profiled, service_capacity_pps, DegradationLevel, DropCounts,
    DropReason, NullHook, OverloadConfig, OverloadReport, SloHook,
};
pub use pipeline::{Hop, HopChain, HopFx, HopId, HopOutcome, PingCtx, PingEvent, Side};
pub use schedlab::{
    run_sched_lab, LabClass, LabClassReport, LabMix, LabPointReport, PreemptionBoundModel,
    SchedLabConfig,
};
