//! Canonical stage-label vocabulary for the Fig-3 ping journey.
//!
//! `StageSpan` labels used to be free `&'static str` literals scattered
//! across the experiment driver; centralizing them here keeps trace
//! labels, telemetry keys and the deadline-budget auditor's term
//! classification from drifting apart. [`term`] maps each stage onto the
//! closed-form model's budget terms (protocol / processing / radio /
//! core / recovery — the paper's Fig 2 attribution).
//!
//! These labels are *trace vocabulary*, distinct from the pipeline's hop
//! vocabulary ([`crate::pipeline::HopId`]): a hop is a processing unit on
//! the event queue, a label names a span in the rendered Fig-3 timeline.
//! The mapping is mostly 1:1 (`AppDown` → [`APP_DOWN`], `Backbone` →
//! [`UPF`], `RadioRing` → [`DL_DATA`]) but not exactly — one hop may emit
//! several spans (`RlfRecovery` emits the whole [`RLF_DETECT`] →
//! [`PDCP_RECOVER`] detour), and fault decorators stretch existing spans
//! rather than adding labels of their own.

/// ① UE walks the request down APP→SDAP→PDCP→RLC.
pub const APP_DOWN: &str = "APP↓";
/// Waiting for the next reachable uplink opportunity.
pub const WAIT_UL_SLOT: &str = "wait UL slot";
/// ② Scheduling request on PUCCH (one-symbol air time).
pub const SR: &str = "SR";
/// ③ gNB decodes the SR (PHY + MAC).
pub const SR_DECODE: &str = "SR decode";
/// Four-step RACH fallback after sr-TransMax exhaustion.
pub const RACH: &str = "RACH";
/// ④ Wait for the per-slot scheduling round.
pub const SCHE: &str = "SCHE";
/// ⑤ UL grant DCI on the air (two-symbol CORESET).
pub const UL_GRANT: &str = "UL grant";
/// UE decodes the grant and prepares the transport block (MAC + PHY).
pub const UE_PREP: &str = "UE prep";
/// ⑥ UL data transmission on the air.
pub const UL_DATA: &str = "UL data";
/// gNB radio front-end: RX chain + fronthaul bus (+ any jitter storm).
pub const RADIO: &str = "radio";
/// ⑦ gNB receive walk: PHY, MAC↑, RLC, PDCP, SDAP.
pub const MAC_UP: &str = "MAC↑";
/// N3 backbone to the UPF and the data network.
pub const UPF: &str = "UPF";
/// ⑧ gNB transmit walk for the reply: SDAP↓, PDCP, RLC.
pub const SDAP_DOWN: &str = "SDAP↓";
/// ⑨ RLC queue: reply waits for its scheduled DL slot (Table 2's RLC-q).
pub const RLC_Q: &str = "RLC-q";
/// ⑩ DL data transmission on the air.
pub const DL_DATA: &str = "DL data";
/// ⑪ UE receive walk: radio, PHY and the upper layers to the app.
pub const PHY_UP: &str = "PHY↑";
/// RLF declared → detection complete.
pub const RLF_DETECT: &str = "RLF detect";
/// RACH re-access carrying the C-RNTI MAC CE.
pub const RACH_REACCESS: &str = "RACH re-access";
/// RRC re-establishment processing (Msg4 → entities re-established).
pub const RRC_REESTABLISH: &str = "RRC reestablish";
/// PDCP status exchange + retransmission of the in-flight SDUs.
pub const PDCP_RECOVER: &str = "PDCP recover";

/// Every stage label, in journey order.
pub const ALL: &[&str] = &[
    APP_DOWN,
    WAIT_UL_SLOT,
    SR,
    SR_DECODE,
    RACH,
    SCHE,
    UL_GRANT,
    UE_PREP,
    UL_DATA,
    RADIO,
    MAC_UP,
    UPF,
    SDAP_DOWN,
    RLC_Q,
    DL_DATA,
    PHY_UP,
    RLF_DETECT,
    RACH_REACCESS,
    RRC_REESTABLISH,
    PDCP_RECOVER,
];

/// The closed-form model's budget terms (Fig 2's attribution split, plus
/// the recovery detour of `core::recovery`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BudgetTerm {
    /// Protocol-imposed waits: slot alignment, SR/grant handshake,
    /// scheduling rounds, queueing for a scheduled slot.
    Protocol,
    /// Software processing in either node's layer walk.
    Processing,
    /// Air time and radio front-end (bus, buffering, RF chains).
    Radio,
    /// Core-network traversal (N3 backbone, UPF).
    Core,
    /// RLF → re-established-bearer recovery detour.
    Recovery,
}

impl BudgetTerm {
    /// Metric-friendly name.
    pub fn label(self) -> &'static str {
        match self {
            BudgetTerm::Protocol => "protocol",
            BudgetTerm::Processing => "processing",
            BudgetTerm::Radio => "radio",
            BudgetTerm::Core => "core",
            BudgetTerm::Recovery => "recovery",
        }
    }

    /// All terms, in attribution order.
    pub const ALL: [BudgetTerm; 5] = [
        BudgetTerm::Protocol,
        BudgetTerm::Processing,
        BudgetTerm::Radio,
        BudgetTerm::Core,
        BudgetTerm::Recovery,
    ];
}

/// Classifies a stage label into its budget term (`None` for labels
/// outside the canonical vocabulary).
pub fn term(label: &str) -> Option<BudgetTerm> {
    match label {
        WAIT_UL_SLOT | SR | RACH | SCHE | UL_GRANT | RLC_Q => Some(BudgetTerm::Protocol),
        APP_DOWN | SR_DECODE | UE_PREP | MAC_UP | SDAP_DOWN | PHY_UP => {
            Some(BudgetTerm::Processing)
        }
        UL_DATA | RADIO | DL_DATA => Some(BudgetTerm::Radio),
        UPF => Some(BudgetTerm::Core),
        RLF_DETECT | RACH_REACCESS | RRC_REESTABLISH | PDCP_RECOVER => Some(BudgetTerm::Recovery),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_label_classifies() {
        for &l in ALL {
            assert!(term(l).is_some(), "label {l:?} has no budget term");
        }
        assert_eq!(term("not a stage"), None);
    }

    #[test]
    fn labels_are_unique() {
        let mut v: Vec<&str> = ALL.to_vec();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), ALL.len());
    }

    #[test]
    fn recovery_labels_match_recovery_term() {
        for l in [RLF_DETECT, RACH_REACCESS, RRC_REESTABLISH, PDCP_RECOVER] {
            assert_eq!(term(l), Some(BudgetTerm::Recovery));
        }
    }
}
