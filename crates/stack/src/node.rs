//! The UE and gNB protocol stacks: real bytes through every layer.
//!
//! Unlike a pure latency model, these stacks *build* each PDU: the ping
//! payload is SDAP-framed, PDCP-numbered and ciphered, RLC-segmented,
//! MAC-multiplexed (with a BSR riding along on the uplink), scrambled and
//! modulated to IQ samples — then decoded in reverse at the far end, with
//! every header checked. The latency experiment asserts byte-exact
//! delivery, so a framing bug anywhere in the workspace fails loudly.

use bytes::Bytes;
use corenet::upf::{Session, Upf, UplinkOutcome};
use phy::modulation::Iq;
use phy::scrambling::data_scrambling_c_init;
use phy::transport::{self, ShChConfig};
use ran::mac::{self, MacPdu, MacSubPdu};
use ran::pdcp::{Direction, PdcpConfig, PdcpEntity};
use ran::rlc::RlcUmEntity;
use ran::sched::Rnti;
use ran::sdap::SdapEntity;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use telemetry::Telemetry;

/// The QFI used for ping traffic (9 = default internet QoS flow).
pub const PING_QFI: u8 = 9;

/// The DRB / logical channel carrying it.
pub const PING_LCID: u8 = 1;

/// Errors surfaced by the composed stacks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StackError {
    /// SDAP failure.
    Sdap(String),
    /// PDCP failure.
    Pdcp(String),
    /// RLC failure.
    Rlc(String),
    /// MAC failure.
    Mac(String),
    /// PHY transport failure.
    Phy(String),
    /// Core-network failure.
    Core(String),
    /// The UE is not attached at the gNB.
    UnknownRnti(Rnti),
    /// A simulation loop exceeded its progress guard — the configuration
    /// cannot drain its own load (e.g. scheduler saturation).
    Diverged(String),
}

impl core::fmt::Display for StackError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StackError::Sdap(e) => write!(f, "SDAP: {e}"),
            StackError::Pdcp(e) => write!(f, "PDCP: {e}"),
            StackError::Rlc(e) => write!(f, "RLC: {e}"),
            StackError::Mac(e) => write!(f, "MAC: {e}"),
            StackError::Phy(e) => write!(f, "PHY: {e}"),
            StackError::Core(e) => write!(f, "core: {e}"),
            StackError::UnknownRnti(r) => write!(f, "unknown RNTI {r}"),
            StackError::Diverged(e) => write!(f, "diverged: {e}"),
        }
    }
}

impl std::error::Error for StackError {}

fn sh_ch_config(rnti: Rnti, dl: bool) -> ShChConfig {
    // Distinct scrambling per UE and direction, as in TS 38.211.
    ShChConfig {
        modulation: phy::modulation::Modulation::Qpsk,
        c_init: data_scrambling_c_init(rnti, u8::from(dl), 101),
    }
}

/// The UE-side protocol stack.
#[derive(Debug)]
pub struct UeStack {
    /// This UE's RNTI.
    pub rnti: Rnti,
    sdap: SdapEntity,
    pdcp: PdcpEntity,
    rlc: RlcUmEntity,
}

impl UeStack {
    /// Creates a UE stack sharing `key` with the gNB.
    pub fn new(rnti: Rnti, key: u64) -> UeStack {
        let mut sdap = SdapEntity::new();
        sdap.map_flow(PING_QFI, PING_LCID);
        UeStack {
            rnti,
            sdap,
            pdcp: PdcpEntity::new(PdcpConfig::new(key, PING_LCID, Direction::Uplink)),
            rlc: RlcUmEntity::new(),
        }
    }

    /// Attaches a telemetry handle, propagating it to every layer entity.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.sdap.set_telemetry(tel.clone());
        self.pdcp.set_telemetry(tel.clone());
        self.rlc.set_telemetry(tel);
    }

    /// Encodes an application payload into uplink MAC PDUs, each at most
    /// `grant_bytes` long (several when the grant forces segmentation).
    pub fn encode_uplink(
        &mut self,
        payload: &Bytes,
        grant_bytes: usize,
    ) -> Result<Vec<Bytes>, StackError> {
        let (_drb, sdap_pdu) =
            self.sdap.encode_pdu(PING_QFI, payload).map_err(|e| StackError::Sdap(e.to_string()))?;
        let pdcp_pdu = self.pdcp.tx_encode(&sdap_pdu);
        self.rlc.tx_sdu(pdcp_pdu);
        self.pull_uplink_pdus(grant_bytes)
    }

    /// Drains the RLC transmit queue into uplink MAC PDUs (BSR riding
    /// along), each at most `grant_bytes` long.
    fn pull_uplink_pdus(&mut self, grant_bytes: usize) -> Result<Vec<Bytes>, StackError> {
        let mut out = Vec::new();
        loop {
            // Reserve room for the MAC subheaders (data + BSR).
            let bsr = MacSubPdu::new(
                mac::lcid::SHORT_BSR,
                mac::encode_short_bsr(0, self.rlc.queued_bytes()),
            );
            let overhead = bsr.encoded_len() + 3; // data subheader worst case
            if grant_bytes <= overhead + 1 {
                return Err(StackError::Mac(format!("grant {grant_bytes} B too small")));
            }
            match self
                .rlc
                .pull_pdu(grant_bytes - overhead)
                .map_err(|e| StackError::Rlc(e.to_string()))?
            {
                Some(rlc_pdu) => {
                    let pdu = MacPdu::new(vec![bsr, MacSubPdu::new(PING_LCID, rlc_pdu)]);
                    out.push(pdu.encode(None).map_err(|e| StackError::Mac(e.to_string()))?);
                }
                None => break,
            }
        }
        Ok(out)
    }

    /// Uplink-bearer data recovery after RRC re-establishment: the RLC
    /// entity is re-established (TS 38.322 §5.1.3 — buffers discarded,
    /// SNs reset) and PDCP data recovery (TS 38.323 §5.4) runs against the
    /// gNB's status report: every unconfirmed PDCP PDU is retransmitted
    /// with its **original COUNT** — SN continuity — re-encoded into fresh
    /// MAC PDUs over the reset RLC.
    pub fn recover_uplink(
        &mut self,
        status_report: &Bytes,
        grant_bytes: usize,
    ) -> Result<Vec<Bytes>, StackError> {
        let report = ran::pdcp::PdcpStatusReport::decode(status_report)
            .map_err(|e| StackError::Pdcp(e.to_string()))?;
        self.rlc = self.rlc.reestablished();
        for pdcp_pdu in self.pdcp.retransmit_unconfirmed(&report) {
            self.rlc.tx_sdu(pdcp_pdu);
        }
        self.pull_uplink_pdus(grant_bytes)
    }

    /// Downlink-bearer half of a re-establishment: re-establishes the RLC
    /// entity and produces the encoded PDCP status report
    /// (TS 38.323 §6.2.3.1) the gNB needs for its data recovery.
    pub fn reestablish_downlink(&mut self) -> Bytes {
        self.rlc = self.rlc.reestablished();
        self.pdcp.status_report().encode()
    }

    /// Decodes a downlink MAC PDU; returns any application payloads
    /// completed by it.
    pub fn decode_downlink(&mut self, mac_pdu: &Bytes) -> Result<Vec<Bytes>, StackError> {
        let pdu = MacPdu::decode(mac_pdu).map_err(|e| StackError::Mac(e.to_string()))?;
        let mut payloads = Vec::new();
        for sub in pdu.subpdus {
            if sub.lcid != PING_LCID {
                continue; // control elements
            }
            let pdcp_pdus =
                self.rlc.rx_pdu(&sub.payload).map_err(|e| StackError::Rlc(e.to_string()))?;
            for p in pdcp_pdus {
                let sdap_pdus =
                    self.pdcp.rx_decode(&p).map_err(|e| StackError::Pdcp(e.to_string()))?;
                for s in sdap_pdus {
                    let (_h, payload) =
                        self.sdap.decode_pdu(&s).map_err(|e| StackError::Sdap(e.to_string()))?;
                    payloads.push(payload);
                }
            }
        }
        Ok(payloads)
    }

    /// Modulates an uplink MAC PDU to IQ samples.
    pub fn phy_encode(&self, mac_pdu: &Bytes) -> Vec<Iq> {
        transport::encode(sh_ch_config(self.rnti, false), mac_pdu).0
    }

    /// Demodulates downlink samples to a MAC PDU.
    pub fn phy_decode(&self, samples: &[Iq]) -> Result<Bytes, StackError> {
        transport::decode(sh_ch_config(self.rnti, true), samples)
            .map(Bytes::from)
            .map_err(|e| StackError::Phy(e.to_string()))
    }

    /// Number of IQ samples an uplink MAC PDU of `bytes` bytes produces.
    pub fn phy_sample_count(&self, bytes: usize) -> usize {
        transport::sample_count(sh_ch_config(self.rnti, false), bytes)
    }
}

#[derive(Debug)]
struct UeContext {
    pdcp: PdcpEntity,
    rlc: RlcUmEntity,
    sdap: SdapEntity,
    session: Session,
}

/// The gNB-side protocol stack plus its embedded UPF link.
#[derive(Debug)]
pub struct GnbStack {
    contexts: BTreeMap<Rnti, UeContext>,
    upf: Upf,
    /// DL-TEID → RNTI routing, kept explicit so failover can re-anchor a
    /// tunnel on a fresh TEID without breaking downlink delivery.
    dl_routes: BTreeMap<u32, Rnti>,
    next_dl_teid: u32,
    tel: Telemetry,
}

impl Default for GnbStack {
    fn default() -> Self {
        Self::new()
    }
}

impl GnbStack {
    /// Creates an empty gNB.
    pub fn new() -> GnbStack {
        GnbStack {
            contexts: BTreeMap::new(),
            upf: Upf::new(),
            dl_routes: BTreeMap::new(),
            next_dl_teid: 0x1_0000,
            tel: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle, propagating it to the UPF and every
    /// attached UE's layer entities (kept for UEs attached later).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.upf.set_telemetry(tel.clone());
        for ctx in self.contexts.values_mut() {
            ctx.sdap.set_telemetry(tel.clone());
            ctx.pdcp.set_telemetry(tel.clone());
            ctx.rlc.set_telemetry(tel.clone());
        }
        self.tel = tel;
    }

    /// Attaches a UE: creates the per-UE layer entities and a PDU session
    /// at the UPF. `ue_addr` is the UE's IP on the data network.
    pub fn attach_ue(&mut self, rnti: Rnti, key: u64, ue_addr: u32) {
        let mut sdap = SdapEntity::new();
        sdap.map_flow(PING_QFI, PING_LCID);
        let mut pdcp = PdcpEntity::new(PdcpConfig::new(key, PING_LCID, Direction::Downlink));
        let mut rlc = RlcUmEntity::new();
        sdap.set_telemetry(self.tel.clone());
        pdcp.set_telemetry(self.tel.clone());
        rlc.set_telemetry(self.tel.clone());
        let dl_teid = u32::from(rnti) + 0x100;
        let session = self.upf.establish_session(ue_addr, dl_teid);
        self.dl_routes.insert(dl_teid, rnti);
        self.contexts.insert(rnti, UeContext { pdcp, rlc, sdap, session });
    }

    /// Attached UE count.
    pub fn attached(&self) -> usize {
        self.contexts.len()
    }

    /// Direct access to the embedded UPF (path supervision probes it).
    pub fn upf_mut(&mut self) -> &mut Upf {
        &mut self.upf
    }

    /// Re-anchors `ue_addr`'s tunnel on a fresh DL TEID after a path
    /// failover: the UPF rebinds the session, the old route is torn down,
    /// and downlink traffic flows over the new tunnel endpoint. Returns
    /// the rebound session.
    pub fn failover_session(&mut self, ue_addr: u32) -> Result<Session, StackError> {
        let new_dl_teid = self.next_dl_teid;
        self.next_dl_teid += 1;
        let rebound = self
            .upf
            .rebind_session(ue_addr, new_dl_teid)
            .map_err(|e| StackError::Core(e.to_string()))?;
        let old_route = self
            .dl_routes
            .iter()
            .find(|&(_, &r)| self.contexts.get(&r).is_some_and(|c| c.session.ue_addr == ue_addr));
        let (&old_teid, &rnti) =
            old_route.ok_or(StackError::Core(format!("no downlink route for UE {ue_addr}")))?;
        self.dl_routes.remove(&old_teid);
        self.dl_routes.insert(new_dl_teid, rnti);
        if let Some(ctx) = self.contexts.get_mut(&rnti) {
            ctx.session = rebound;
        }
        Ok(rebound)
    }

    fn ctx(&mut self, rnti: Rnti) -> Result<&mut UeContext, StackError> {
        self.contexts.get_mut(&rnti).ok_or(StackError::UnknownRnti(rnti))
    }

    /// Decodes an uplink MAC PDU from `rnti`; completed packets are pushed
    /// through GTP-U to the UPF and returned as data-network payloads.
    pub fn decode_uplink(&mut self, rnti: Rnti, mac_pdu: &Bytes) -> Result<Vec<Bytes>, StackError> {
        let ctx = self.contexts.get_mut(&rnti).ok_or(StackError::UnknownRnti(rnti))?;
        let pdu = MacPdu::decode(mac_pdu).map_err(|e| StackError::Mac(e.to_string()))?;
        let mut n3_packets = Vec::new();
        for sub in pdu.subpdus {
            if sub.lcid != PING_LCID {
                continue;
            }
            let pdcp_pdus =
                ctx.rlc.rx_pdu(&sub.payload).map_err(|e| StackError::Rlc(e.to_string()))?;
            for p in pdcp_pdus {
                let sdap_pdus =
                    ctx.pdcp.rx_decode(&p).map_err(|e| StackError::Pdcp(e.to_string()))?;
                for s in sdap_pdus {
                    let (_h, payload) =
                        ctx.sdap.decode_pdu(&s).map_err(|e| StackError::Sdap(e.to_string()))?;
                    // N3: wrap in GTP-U toward the UPF.
                    n3_packets.push((
                        corenet::gtpu::GtpuHeader::gpdu(ctx.session.ul_teid).encode(&payload),
                        (),
                    ));
                }
            }
        }
        // UPF decapsulates onto the data network.
        let mut out = Vec::new();
        for (n3, ()) in n3_packets {
            match self.upf.uplink(&n3).map_err(|e| StackError::Core(e.to_string()))? {
                UplinkOutcome::Data { payload, .. } => out.push(payload),
                // Only G-PDUs are built above; echo responses belong to
                // the supervision path, not the data path.
                UplinkOutcome::EchoResponse(_) => {}
            }
        }
        Ok(out)
    }

    /// Encodes a data-network payload for `ue_addr` into downlink MAC PDUs
    /// (UPF encapsulation, N3, then the full gNB L2 chain).
    pub fn encode_downlink(
        &mut self,
        ue_addr: u32,
        payload: &Bytes,
        grant_bytes: usize,
    ) -> Result<(Rnti, Vec<Bytes>), StackError> {
        let n3 =
            self.upf.downlink(ue_addr, payload).map_err(|e| StackError::Core(e.to_string()))?;
        let (gtp, inner) =
            corenet::gtpu::GtpuHeader::decode(&n3).map_err(|e| StackError::Core(e.to_string()))?;
        // Route by DL TEID back to the RNTI.
        let rnti = *self
            .dl_routes
            .get(&gtp.teid)
            .ok_or(StackError::Core(format!("no route for DL TEID {}", gtp.teid)))?;
        let ctx = self.ctx(rnti)?;
        let (_drb, sdap_pdu) =
            ctx.sdap.encode_pdu(PING_QFI, &inner).map_err(|e| StackError::Sdap(e.to_string()))?;
        let pdcp_pdu = ctx.pdcp.tx_encode(&sdap_pdu);
        ctx.rlc.tx_sdu(pdcp_pdu);
        let out = Self::pull_downlink_pdus(ctx, grant_bytes)?;
        Ok((rnti, out))
    }

    /// Drains `ctx`'s RLC transmit queue into downlink MAC PDUs, each at
    /// most `grant_bytes` long.
    fn pull_downlink_pdus(
        ctx: &mut UeContext,
        grant_bytes: usize,
    ) -> Result<Vec<Bytes>, StackError> {
        let mut out = Vec::new();
        loop {
            let overhead = 3;
            if grant_bytes <= overhead + 1 {
                return Err(StackError::Mac(format!("grant {grant_bytes} B too small")));
            }
            match ctx
                .rlc
                .pull_pdu(grant_bytes - overhead)
                .map_err(|e| StackError::Rlc(e.to_string()))?
            {
                Some(rlc_pdu) => {
                    let pdu = MacPdu::new(vec![MacSubPdu::new(PING_LCID, rlc_pdu)]);
                    out.push(pdu.encode(None).map_err(|e| StackError::Mac(e.to_string()))?);
                }
                None => break,
            }
        }
        Ok(out)
    }

    /// Uplink-bearer half of a re-establishment for `rnti`: re-establishes
    /// the receive-side RLC entity and produces the encoded PDCP status
    /// report (TS 38.323 §6.2.3.1) that drives the UE's data recovery.
    pub fn reestablish_uplink(&mut self, rnti: Rnti) -> Result<Bytes, StackError> {
        let ctx = self.ctx(rnti)?;
        ctx.rlc = ctx.rlc.reestablished();
        Ok(ctx.pdcp.status_report().encode())
    }

    /// Downlink-bearer data recovery for `rnti` after RRC
    /// re-establishment: RLC re-establishment plus PDCP data recovery from
    /// the UE's status report — the unconfirmed PDCP PDUs are retransmitted
    /// with their original COUNTs as fresh MAC PDUs.
    pub fn recover_downlink(
        &mut self,
        rnti: Rnti,
        status_report: &Bytes,
        grant_bytes: usize,
    ) -> Result<Vec<Bytes>, StackError> {
        let report = ran::pdcp::PdcpStatusReport::decode(status_report)
            .map_err(|e| StackError::Pdcp(e.to_string()))?;
        let ctx = self.ctx(rnti)?;
        ctx.rlc = ctx.rlc.reestablished();
        for pdcp_pdu in ctx.pdcp.retransmit_unconfirmed(&report) {
            ctx.rlc.tx_sdu(pdcp_pdu);
        }
        Self::pull_downlink_pdus(self.ctx(rnti)?, grant_bytes)
    }

    /// Modulates a downlink MAC PDU for `rnti` to IQ samples.
    pub fn phy_encode(&self, rnti: Rnti, mac_pdu: &Bytes) -> Vec<Iq> {
        transport::encode(sh_ch_config(rnti, true), mac_pdu).0
    }

    /// Demodulates uplink samples from `rnti` to a MAC PDU.
    pub fn phy_decode(&self, rnti: Rnti, samples: &[Iq]) -> Result<Bytes, StackError> {
        transport::decode(sh_ch_config(rnti, false), samples)
            .map(Bytes::from)
            .map_err(|e| StackError::Phy(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attach_pair() -> (UeStack, GnbStack) {
        let mut gnb = GnbStack::new();
        gnb.attach_ue(17, 0xABCD, 0x0A00_0001);
        (UeStack::new(17, 0xABCD), gnb)
    }

    #[test]
    fn uplink_end_to_end_bytes() {
        let (mut ue, mut gnb) = attach_pair();
        let payload = Bytes::from_static(b"ICMP echo request, seq=1");
        let mac_pdus = ue.encode_uplink(&payload, 256).unwrap();
        assert_eq!(mac_pdus.len(), 1);
        let delivered = gnb.decode_uplink(17, &mac_pdus[0]).unwrap();
        assert_eq!(delivered, vec![payload]);
    }

    #[test]
    fn downlink_end_to_end_bytes() {
        let (mut ue, mut gnb) = attach_pair();
        let payload = Bytes::from_static(b"ICMP echo reply, seq=1");
        let (rnti, mac_pdus) = gnb.encode_downlink(0x0A00_0001, &payload, 256).unwrap();
        assert_eq!(rnti, 17);
        let mut delivered = Vec::new();
        for p in &mac_pdus {
            delivered.extend(ue.decode_downlink(p).unwrap());
        }
        assert_eq!(delivered, vec![payload]);
    }

    #[test]
    fn round_trip_through_phy_samples() {
        let (mut ue, mut gnb) = attach_pair();
        let payload = Bytes::from_static(b"over the air");
        let mac_pdus = ue.encode_uplink(&payload, 256).unwrap();
        let samples = ue.phy_encode(&mac_pdus[0]);
        assert_eq!(samples.len(), ue.phy_sample_count(mac_pdus[0].len()));
        let decoded = gnb.phy_decode(17, &samples).unwrap();
        assert_eq!(decoded, mac_pdus[0]);
        let delivered = gnb.decode_uplink(17, &decoded).unwrap();
        assert_eq!(delivered, vec![payload]);
    }

    #[test]
    fn small_grant_forces_multiple_mac_pdus() {
        let (mut ue, mut gnb) = attach_pair();
        let payload = Bytes::from(vec![0x42u8; 300]);
        let mac_pdus = ue.encode_uplink(&payload, 64).unwrap();
        assert!(mac_pdus.len() >= 5, "got {} PDUs", mac_pdus.len());
        let mut delivered = Vec::new();
        for p in &mac_pdus {
            delivered.extend(gnb.decode_uplink(17, p).unwrap());
        }
        assert_eq!(delivered, vec![payload]);
    }

    #[test]
    fn ul_and_dl_scrambling_differ() {
        let (ue, gnb) = attach_pair();
        let pdu = Bytes::from_static(b"same bytes");
        let ul = ue.phy_encode(&pdu);
        let dl = gnb.phy_encode(17, &pdu);
        assert_ne!(
            ul.iter().map(|s| (s.i.to_bits(), s.q.to_bits())).collect::<Vec<_>>(),
            dl.iter().map(|s| (s.i.to_bits(), s.q.to_bits())).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unknown_rnti_rejected() {
        let mut gnb = GnbStack::new();
        assert_eq!(gnb.decode_uplink(99, &Bytes::new()).unwrap_err(), StackError::UnknownRnti(99));
    }

    #[test]
    fn wrong_ue_cannot_decode() {
        let (mut ue17, mut gnb) = attach_pair();
        gnb.attach_ue(18, 0x9999, 0x0A00_0002);
        let payload = Bytes::from_static(b"for UE 17 only");
        let (_, mac_pdus) = gnb.encode_downlink(0x0A00_0001, &payload, 256).unwrap();
        // UE 18 has a different key: PDCP deciphering garbles the SDU (the
        // SDAP decode may nominally succeed, but bytes differ).
        let mut ue18 = UeStack::new(18, 0x9999);
        let out18 = ue18.decode_downlink(&mac_pdus[0]).unwrap_or_default();
        assert!(out18.is_empty() || out18[0] != payload);
        // The right UE decodes fine.
        assert_eq!(ue17.decode_downlink(&mac_pdus[0]).unwrap(), vec![payload]);
    }

    #[test]
    fn failover_reanchors_downlink_tunnel() {
        let (mut ue, mut gnb) = attach_pair();
        let deliver = |ue: &mut UeStack, pdus: &[Bytes]| -> Vec<Bytes> {
            pdus.iter().flat_map(|p| ue.decode_downlink(p).unwrap()).collect()
        };
        let before = Bytes::from_static(b"before failover");
        let (rnti, pdus) = gnb.encode_downlink(0x0A00_0001, &before, 256).unwrap();
        assert_eq!(rnti, 17);
        assert_eq!(deliver(&mut ue, &pdus), vec![before]);

        let rebound = gnb.failover_session(0x0A00_0001).unwrap();
        assert_eq!(rebound.dl_teid, 0x1_0000);
        // Downlink still reaches the same UE over the new tunnel.
        let after = Bytes::from_static(b"after failover");
        let (rnti, pdus) = gnb.encode_downlink(0x0A00_0001, &after, 256).unwrap();
        assert_eq!(rnti, 17);
        assert_eq!(deliver(&mut ue, &pdus), vec![after]);
        // Unknown UE still errors.
        assert!(gnb.failover_session(0xDEAD).is_err());
    }

    #[test]
    fn uplink_recovery_redelivers_lost_sdu_exactly_once() {
        let (mut ue, mut gnb) = attach_pair();
        // Ping A goes through cleanly.
        let a = Bytes::from_static(b"ping A: delivered");
        for pdu in ue.encode_uplink(&a, 256).unwrap() {
            assert_eq!(gnb.decode_uplink(17, &pdu).unwrap(), vec![a.clone()]);
        }
        // Ping B is encoded but lost on the air (never decoded): RLF.
        let b = Bytes::from_static(b"ping B: lost to RLF");
        let _lost = ue.encode_uplink(&b, 256).unwrap();
        // Re-establishment: the gNB's status report drives the UE's PDCP
        // data recovery; only the in-flight SDU is retransmitted.
        let report = gnb.reestablish_uplink(17).unwrap();
        let retx = ue.recover_uplink(&report, 256).unwrap();
        assert!(!retx.is_empty());
        let mut delivered = Vec::new();
        for pdu in &retx {
            delivered.extend(gnb.decode_uplink(17, pdu).unwrap());
        }
        assert_eq!(delivered, vec![b], "exactly the lost SDU, exactly once");
        // The bearer keeps working after recovery.
        let c = Bytes::from_static(b"ping C: back to normal");
        let mut after = Vec::new();
        for pdu in ue.encode_uplink(&c, 256).unwrap() {
            after.extend(gnb.decode_uplink(17, &pdu).unwrap());
        }
        assert_eq!(after, vec![c]);
    }

    #[test]
    fn downlink_recovery_redelivers_lost_sdu_exactly_once() {
        let (mut ue, mut gnb) = attach_pair();
        let a = Bytes::from_static(b"reply A: delivered");
        let (_, pdus) = gnb.encode_downlink(0x0A00_0001, &a, 256).unwrap();
        let got: Vec<Bytes> = pdus.iter().flat_map(|p| ue.decode_downlink(p).unwrap()).collect();
        assert_eq!(got, vec![a]);
        // Reply B lost on the air.
        let b = Bytes::from_static(b"reply B: lost to RLF");
        let _lost = gnb.encode_downlink(0x0A00_0001, &b, 256).unwrap();
        let report = ue.reestablish_downlink();
        let retx = gnb.recover_downlink(17, &report, 256).unwrap();
        assert!(!retx.is_empty());
        let delivered: Vec<Bytes> =
            retx.iter().flat_map(|p| ue.decode_downlink(p).unwrap()).collect();
        assert_eq!(delivered, vec![b]);
        // Subsequent downlink traffic is unaffected.
        let c = Bytes::from_static(b"reply C: back to normal");
        let (_, pdus) = gnb.encode_downlink(0x0A00_0001, &c, 256).unwrap();
        let got: Vec<Bytes> = pdus.iter().flat_map(|p| ue.decode_downlink(p).unwrap()).collect();
        assert_eq!(got, vec![c]);
    }

    #[test]
    fn multiple_ues_are_isolated_sessions() {
        let mut gnb = GnbStack::new();
        gnb.attach_ue(1, 0x1, 100);
        gnb.attach_ue(2, 0x2, 200);
        assert_eq!(gnb.attached(), 2);
        let p1 = Bytes::from_static(b"to ue 1");
        let (rnti, _) = gnb.encode_downlink(100, &p1, 128).unwrap();
        assert_eq!(rnti, 1);
        let (rnti, _) = gnb.encode_downlink(200, &p1, 128).unwrap();
        assert_eq!(rnti, 2);
    }
}
