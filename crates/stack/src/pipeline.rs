//! The event-driven stage pipeline: the Fig 2/Fig 3 packet journey as a
//! declarative chain of [`Hop`]s on one shared [`sim::EventQueue`].
//!
//! A **hop** is a named pipeline unit wrapping one layer operation — the
//! UE's SDAP/PDCP/RLC walk, the SR/grant exchange, a HARQ delivery cycle,
//! a radio-head crossing, the GTP-U/UPF backbone hop. Each hop consumes
//! one [`PingEvent`], performs its layer work (sampling processing times,
//! encoding/decoding real PDUs), and returns its effects in a [`HopFx`]:
//! the [`StageSpan`]s it contributes to the trace plus the next event(s)
//! it schedules. The experiment driver (`PingExperiment::one_ping`) pops
//! events off the queue and dispatches them through the [`HopChain`] until
//! the ping completes, is lost, or detours through RRC recovery.
//!
//! Cross-cutting concerns stay out of the hop bodies:
//!
//! - **faults** (`sim::faults`) are applied by decorator hops —
//!   [`SrLossGate`], [`GrantGate`], [`StormGate`], [`SpikeGate`] — that
//!   wrap the protocol hop and inject the loss/stall *around* it, exactly
//!   where the fault process acts in the real system;
//! - **telemetry** span emission lives in the driver: hops only return
//!   spans, the driver appends them to the [`PingTrace`] and flushes the
//!   journey to the journal once per ping (UL side then DL side), so an
//!   instrumented run and a dark run stay bit-identical.
//!
//! The pipeline is behavior-preserving by construction: every hop draws
//! from the same per-stream RNGs (`rng_ue`, `rng_gnb`, `rng_net`, the
//! fault injector's child streams) in the same per-stream order as the
//! seed monolithic walk, and every event fires at the instant the
//! monolith computed — the golden-equivalence suite in
//! `tests/golden_pipeline.rs` pins this span-for-span.

use bytes::Bytes;
use ran::sched::{AccessMode, UlGrant};
use ran::sr::SrProcedure;
use sim::{Duration, FaultKind, Instant, PingFaultTrace};
use telemetry::JournalEvent;

use crate::config::DlPullPoint;
use crate::experiment::{
    make_payload, ExperimentResult, PingExperiment, RlfEvent, MAX_SCHED_ROUNDS, RNTI, UE_ADDR,
};
use crate::journey::{PingTrace, StageSpan};
use crate::stage_labels as labels;

/// Which half of the journey a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Uplink (request) leg.
    Ul,
    /// Downlink (reply) leg.
    Dl,
}

/// One event in a ping's walk. Each variant is consumed by exactly one
/// hop (see [`PingEvent::hop`]); the payload carries what the *next* hop
/// needs and nothing more — everything else lives in [`PingCtx`].
#[derive(Debug, Clone, Copy)]
pub enum PingEvent {
    /// The application emits the request at `t0`.
    Arrival,
    /// The packet reached the UE RLC queue; decide how to get on the air.
    UlAccess,
    /// Probe for the next UL opportunity to carry an SR (grant-based).
    SrTx {
        /// Where to start looking for the opportunity.
        probe: Instant,
    },
    /// An SR transmission left the UE antenna.
    SrOnAir {
        /// Slot carrying the SR.
        slot: u64,
        /// When the PUCCH transmission started.
        tx_start: Instant,
    },
    /// The gNB MAC knows about the UE's buffer (SR decoded, or RACH Msg3
    /// carried the buffer status).
    SrReady,
    /// A scheduling round at a slot boundary (uplink).
    SchedRound {
        /// The boundary slot being scheduled.
        slot: u64,
    },
    /// The scheduler issued an UL grant.
    GrantIssued {
        /// The grant.
        grant: UlGrant,
        /// The slot whose boundary produced the decision.
        decision_slot: u64,
    },
    /// UL samples are ready at the UE PHY; transmit at the next reachable
    /// (or granted) opportunity.
    UlTxReady {
        /// The granted slot pinning the resources, if any.
        granted_slot: Option<u64>,
    },
    /// A transport block finished its air time; play HARQ/RLC delivery.
    AirDeliver,
    /// Radio link failure declared: run the RRC re-establishment detour.
    RlfDetour,
    /// The block got through; the gNB radio head receives it.
    GnbRx,
    /// Samples are at the gNB host; walk PHY→MAC→RLC→PDCP→SDAP up.
    GnbWalk,
    /// Cross the N3 backbone (GTP-U/UPF), in the given direction.
    Backbone {
        /// `true` for the reply's trip back to the gNB.
        dl: bool,
    },
    /// The reply reached the gNB; walk SDAP→PDCP→RLC down into the queue.
    DlWalkDown,
    /// A scheduling round at a slot boundary (downlink).
    DlSched {
        /// The boundary slot being scheduled.
        slot: u64,
    },
    /// The DL transport block is pulled from RLC; MAC/PHY prepare it.
    DlPrepare {
        /// The assigned air time.
        dl_tx: Instant,
    },
    /// DL samples arrive at the radio-head TX ring.
    RingSubmit {
        /// The assigned air time.
        dl_tx: Instant,
    },
    /// The DL block got through; the UE receives and walks it up.
    UeRx,
}

/// Names of the pipeline units, in journey order. Doubles as the
/// [`HopChain`] index: `chain[event.hop()]` is the consuming hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HopId {
    /// UE application → RLC queue (①, `APP↓`).
    AppDown,
    /// Access-mode fork: grant-free MAC prep vs SR trigger.
    UlAccess,
    /// SR opportunity probe / RACH fallback (②).
    SrTx,
    /// gNB decodes the SR (PHY + MAC) — wrapped by [`SrLossGate`].
    SrDecode,
    /// Buffer status reaches the scheduler; first boundary is booked.
    UlSchedRequest,
    /// One UL scheduling round per slot boundary (③–④).
    UlSched,
    /// UE decodes the grant DCI and prepares (⑤) — wrapped by
    /// [`GrantGate`].
    GrantRx,
    /// UL data transmission in the granted/next opportunity (⑥).
    UlTx,
    /// HARQ + RLC AM delivery of a transport block (either direction).
    HarqDelivery,
    /// RRC re-establishment detour after RLF.
    RlfRecovery,
    /// gNB radio-head RX crossing (⑦) — wrapped by [`StormGate`].
    GnbRadio,
    /// gNB PHY→SDAP uplink walk + byte-exact decode (⑦).
    GnbWalkUp,
    /// N3 backbone crossing under path supervision — wrapped by
    /// [`SpikeGate`].
    Backbone,
    /// gNB SDAP→RLC downlink walk (⑧).
    DlWalkDown,
    /// One DL scheduling round per slot boundary (⑨, ends `RLC-q`).
    DlSched,
    /// DL MAC/PHY preparation + radio submission (⑩) — wrapped by
    /// [`StormGate`].
    DlPrep,
    /// TX-ring deadline check and DL air time (⑩).
    RadioRing,
    /// UE receive walk up to the application (⑪, `PHY↑`).
    UeRxUp,
}

/// Number of hops in the standard chain.
pub const HOP_COUNT: usize = HopId::UeRxUp as usize + 1;

impl HopId {
    /// Every hop, in journey order (profiler coverage iterates this).
    pub const ALL: [HopId; HOP_COUNT] = [
        HopId::AppDown,
        HopId::UlAccess,
        HopId::SrTx,
        HopId::SrDecode,
        HopId::UlSchedRequest,
        HopId::UlSched,
        HopId::GrantRx,
        HopId::UlTx,
        HopId::HarqDelivery,
        HopId::RlfRecovery,
        HopId::GnbRadio,
        HopId::GnbWalkUp,
        HopId::Backbone,
        HopId::DlWalkDown,
        HopId::DlSched,
        HopId::DlPrep,
        HopId::RadioRing,
        HopId::UeRxUp,
    ];

    /// Stable snake-case name — the profiler's stage key and the
    /// `profile.csv` row identity.
    pub fn name(self) -> &'static str {
        match self {
            HopId::AppDown => "app_down",
            HopId::UlAccess => "ul_access",
            HopId::SrTx => "sr_tx",
            HopId::SrDecode => "sr_decode",
            HopId::UlSchedRequest => "ul_sched_request",
            HopId::UlSched => "ul_sched",
            HopId::GrantRx => "grant_rx",
            HopId::UlTx => "ul_tx",
            HopId::HarqDelivery => "harq_delivery",
            HopId::RlfRecovery => "rlf_recovery",
            HopId::GnbRadio => "gnb_radio",
            HopId::GnbWalkUp => "gnb_walk_up",
            HopId::Backbone => "backbone",
            HopId::DlWalkDown => "dl_walk_down",
            HopId::DlSched => "dl_sched",
            HopId::DlPrep => "dl_prep",
            HopId::RadioRing => "radio_ring",
            HopId::UeRxUp => "ue_rx_up",
        }
    }
}

impl PingEvent {
    /// The hop consuming this event.
    pub fn hop(&self) -> HopId {
        match self {
            PingEvent::Arrival => HopId::AppDown,
            PingEvent::UlAccess => HopId::UlAccess,
            PingEvent::SrTx { .. } => HopId::SrTx,
            PingEvent::SrOnAir { .. } => HopId::SrDecode,
            PingEvent::SrReady => HopId::UlSchedRequest,
            PingEvent::SchedRound { .. } => HopId::UlSched,
            PingEvent::GrantIssued { .. } => HopId::GrantRx,
            PingEvent::UlTxReady { .. } => HopId::UlTx,
            PingEvent::AirDeliver => HopId::HarqDelivery,
            PingEvent::RlfDetour => HopId::RlfRecovery,
            PingEvent::GnbRx => HopId::GnbRadio,
            PingEvent::GnbWalk => HopId::GnbWalkUp,
            PingEvent::Backbone { .. } => HopId::Backbone,
            PingEvent::DlWalkDown => HopId::DlWalkDown,
            PingEvent::DlSched { .. } => HopId::DlSched,
            PingEvent::DlPrepare { .. } => HopId::DlPrep,
            PingEvent::RingSubmit { .. } => HopId::RadioRing,
            PingEvent::UeRx => HopId::UeRxUp,
        }
    }
}

/// State of the transport-block delivery currently in flight (shared by
/// the UL and DL legs — [`HopId::HarqDelivery`] and [`HopId::RlfRecovery`]
/// serve both).
#[derive(Debug, Default)]
pub(crate) struct DeliveryState {
    /// `true` while delivering the DL reply.
    pub dl: bool,
    /// Air time of one retransmission.
    pub air: Duration,
    /// Grant size a recovery re-encode must respect.
    pub grant_bytes: usize,
    /// `(span start, RLF instant)` of the recovery whose retransmission
    /// is in flight.
    pub pending: Option<(Instant, Instant)>,
    /// MAC PDUs rebuilt by PDCP data recovery (they replace the originals
    /// on the byte path: both RLC entities restarted their numbering).
    pub recovered: Option<Vec<Bytes>>,
}

/// Per-ping mutable state threaded through the chain. Hops communicate
/// forward through events; anything a *later* hop needs that does not fit
/// an event payload lives here.
pub struct PingCtx {
    pub(crate) id: u64,
    pub(crate) t0: Instant,
    pub(crate) trace: PingTrace,
    pub(crate) ftrace: PingFaultTrace,
    pub(crate) payload: Bytes,
    pub(crate) mac_pdus: Vec<Bytes>,
    pub(crate) ul_samples: usize,
    pub(crate) ue_phy: Duration,
    pub(crate) ue_submit: Duration,
    pub(crate) in_rlc: Instant,
    pub(crate) sr: Option<SrProcedure>,
    pub(crate) sr_ready: Instant,
    pub(crate) sched_rounds: u32,
    pub(crate) first_withheld: Option<Instant>,
    pub(crate) delivery: DeliveryState,
    pub(crate) dl_t0: Instant,
    pub(crate) reply: Bytes,
    pub(crate) dl_pdus: Vec<Bytes>,
    pub(crate) dl_samples: usize,
    pub(crate) in_rlc_q: Instant,
    pub(crate) dl_sched_rounds: u32,
    /// Storm stall sampled by the DL prep decorator, charged by the ring.
    pub(crate) pending_storm: Duration,
    /// Backbone spike sampled by the decorator, charged by the crossing.
    pub(crate) pending_spike: Duration,
}

impl PingCtx {
    pub(crate) fn new(id: u64, t0: Instant) -> PingCtx {
        PingCtx {
            id,
            t0,
            trace: PingTrace::new(id),
            ftrace: PingFaultTrace::new(),
            payload: Bytes::new(),
            mac_pdus: Vec::new(),
            ul_samples: 0,
            ue_phy: Duration::ZERO,
            ue_submit: Duration::ZERO,
            in_rlc: t0,
            sr: None,
            sr_ready: t0,
            sched_rounds: 0,
            first_withheld: None,
            delivery: DeliveryState::default(),
            dl_t0: t0,
            reply: Bytes::new(),
            dl_pdus: Vec::new(),
            dl_samples: 0,
            in_rlc_q: t0,
            dl_sched_rounds: 0,
            pending_storm: Duration::ZERO,
            pending_spike: Duration::ZERO,
        }
    }
}

/// How a hop left the walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HopOutcome {
    /// The walk continues with the emitted events.
    #[default]
    Continue,
    /// The ping is lost (attributed to the dominant fault by the driver).
    Lost,
    /// The ping completed (latency already recorded).
    Done,
}

/// The effects a hop returns: trace spans, follow-up events, and the walk
/// outcome. Hops never touch the event queue or the journal's stage flush
/// directly — everything flows through here so decorators can stretch
/// spans and shift emissions, and the driver stays the single scheduler.
#[derive(Debug, Default)]
pub struct HopFx {
    pub(crate) spans: Vec<(Side, StageSpan)>,
    pub(crate) emits: Vec<(Instant, PingEvent)>,
    pub(crate) outcome: HopOutcome,
}

impl HopFx {
    pub(crate) fn new() -> HopFx {
        HopFx::default()
    }

    /// Contributes a trace span.
    pub fn span(&mut self, side: Side, span: StageSpan) {
        self.spans.push((side, span));
    }

    /// Schedules the next event at `at`.
    pub fn emit(&mut self, at: Instant, ev: PingEvent) {
        self.emits.push((at, ev));
    }

    /// Declares the ping lost.
    pub fn lose(&mut self) {
        self.outcome = HopOutcome::Lost;
    }

    /// Declares the ping delivered.
    pub fn done(&mut self) {
        self.outcome = HopOutcome::Done;
    }
}

/// One pipeline unit. Implementations read/write the experiment's layer
/// entities and RNG streams (`exp`), the per-ping state (`ctx`), and the
/// run's accumulators (`result`), and return their effects in `fx`.
pub trait Hop {
    /// Consumes `ev`, which fired at `at`.
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        result: &mut ExperimentResult,
        at: Instant,
        ev: PingEvent,
        fx: &mut HopFx,
    );
}

/// The hop chain: one handler per [`HopId`], faults and telemetry layered
/// on as decorators. Built once per run and shared by every ping.
pub struct HopChain {
    hops: Vec<Box<dyn Hop>>,
}

impl HopChain {
    /// The standard ping journey: every Fig 2 stage, with the fault gates
    /// wrapped around the hops they perturb.
    pub fn standard() -> HopChain {
        let mut hops: Vec<Box<dyn Hop>> = Vec::with_capacity(HOP_COUNT);
        hops.push(Box::new(AppDownHop));
        hops.push(Box::new(UlAccessHop));
        hops.push(Box::new(SrTxHop));
        hops.push(Box::new(SrLossGate { inner: SrDecodeHop }));
        hops.push(Box::new(UlSchedRequestHop));
        hops.push(Box::new(UlSchedHop));
        hops.push(Box::new(GrantGate { inner: GrantRxHop }));
        hops.push(Box::new(UlTxHop));
        hops.push(Box::new(HarqDeliveryHop));
        hops.push(Box::new(RlfRecoveryHop));
        hops.push(Box::new(StormGate { inner: GnbRadioHop, stretch_span: true }));
        hops.push(Box::new(GnbWalkHop));
        hops.push(Box::new(SpikeGate { inner: BackboneHop }));
        hops.push(Box::new(DlWalkHop));
        hops.push(Box::new(DlSchedHop));
        hops.push(Box::new(StormGate { inner: DlPrepHop, stretch_span: false }));
        hops.push(Box::new(RingHop));
        hops.push(Box::new(UeRxHop));
        debug_assert_eq!(hops.len(), HOP_COUNT);
        HopChain { hops }
    }

    /// Routes `ev` to its hop.
    pub fn dispatch(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        result: &mut ExperimentResult,
        at: Instant,
        ev: PingEvent,
        fx: &mut HopFx,
    ) {
        self.hops[ev.hop() as usize].handle(exp, ctx, result, at, ev, fx);
    }
}

// ---------------------------------------------------------------------
// Uplink hops
// ---------------------------------------------------------------------

/// ① `APP↓`: the UE walks the request down SDAP→PDCP→RLC and encodes the
/// actual MAC PDU(s).
struct AppDownHop;

impl Hop for AppDownHop {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        _result: &mut ExperimentResult,
        at: Instant,
        _ev: PingEvent,
        fx: &mut HopFx,
    ) {
        // Pings are spaced far apart: a connection that survived to the
        // next ping has been stable long enough for the re-establishment
        // counters to clear, so the budget bounds one incident chain.
        exp.rrc.reset_budget();
        ctx.payload = make_payload(ctx.id, exp.config.payload_bytes);
        let ue_upper =
            exp.sample_ue(|t| &t.sdap) + exp.sample_ue(|t| &t.pdcp) + exp.sample_ue(|t| &t.rlc);
        let in_rlc = at + ue_upper;
        fx.span(Side::Ul, StageSpan::new(labels::APP_DOWN, at, in_rlc));
        // Build the actual MAC PDU(s) now (content is time-independent).
        // Infallible by construction: `grant_bytes()` sizes the UL grant
        // for the configured payload plus PDCP/RLC/MAC headers, so the
        // segmenter never overflows a transport block here.
        let grant_bytes = exp.config.grant_bytes();
        ctx.mac_pdus =
            exp.ue.encode_uplink(&ctx.payload, grant_bytes).expect("UL grant sized for payload");
        ctx.ul_samples = exp.ue.phy_sample_count(ctx.mac_pdus[0].len());
        ctx.in_rlc = in_rlc;
        fx.emit(in_rlc, PingEvent::UlAccess);
    }
}

/// ② Access fork. The UE MAC/PHY preparation is pipelined with the
/// protocol waits — the modem builds the transport block while waiting
/// for its slot, so both draws happen here.
struct UlAccessHop;

impl Hop for UlAccessHop {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        _result: &mut ExperimentResult,
        at: Instant,
        _ev: PingEvent,
        fx: &mut HopFx,
    ) {
        ctx.ue_phy = exp.sample_ue(|t| &t.phy);
        ctx.ue_submit = exp.ue_radio.tx_radio_latency(ctx.ul_samples as u64, &mut exp.rng_ue);
        match exp.config.access {
            AccessMode::GrantFree => {
                // UE MAC prepares the transmission directly.
                let mac_t = exp.sample_ue(|t| &t.mac);
                fx.emit(at + mac_t + ctx.ue_phy, PingEvent::UlTxReady { granted_slot: None });
            }
            AccessMode::GrantBased => {
                let mut sr = SrProcedure::new(exp.config.sr);
                sr.trigger(at);
                ctx.sr = Some(sr);
                fx.emit(at, PingEvent::SrTx { probe: at });
            }
        }
    }
}

/// ② SR transmission probe: the SR transmits at UL opportunities until
/// the gNB hears one; sr-TransMax exhaustion falls back to the four-step
/// RACH (TS 38.321 §5.4.4), whose Msg3 carries the buffer status.
struct SrTxHop;

impl Hop for SrTxHop {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        result: &mut ExperimentResult,
        _at: Instant,
        ev: PingEvent,
        fx: &mut HopFx,
    ) {
        let PingEvent::SrTx { probe } = ev else { unreachable!("SrTxHop consumes SrTx") };
        let sr_op = exp.timing.next_ul_opportunity(probe);
        // Infallible: `SrTx` is only ever emitted by `UlAccessHop` (grant-
        // based arm) and by this hop's retry path, both after `ctx.sr` was
        // populated; `ctx.sr` is cleared only between pings.
        let sr = ctx.sr.as_mut().expect("SR procedure in flight");
        if sr.maybe_transmit(sr_op.slot, sr_op.tx_start) {
            fx.emit(
                sr_op.tx_start,
                PingEvent::SrOnAir { slot: sr_op.slot, tx_start: sr_op.tx_start },
            );
        } else if sr.needs_rach() {
            let giving_up = sr_op.tx_start;
            let rach_cfg = exp.config.rach;
            match ran::rach::recovery_latency(&rach_cfg, giving_up, 1, exp.injector.recovery_rng())
            {
                Some(lat) => {
                    result.rach_recoveries += 1;
                    exp.tel.count("mac", "rach_recoveries", 1);
                    ctx.ftrace.record(FaultKind::SrLoss, lat);
                    fx.span(Side::Ul, StageSpan::new(labels::RACH, giving_up, giving_up + lat));
                    // Infallible: same invariant as above — this branch is
                    // only reachable while the SR procedure is in flight.
                    ctx.sr.as_mut().expect("SR procedure in flight").on_rach_complete();
                    fx.emit(giving_up + lat, PingEvent::SrReady);
                }
                // Random access failed too: the UE never regains uplink
                // access for this packet.
                None => fx.lose(),
            }
        } else {
            let next = exp.timing.slot_start(sr_op.slot + 1);
            fx.emit(next, PingEvent::SrTx { probe: next });
        }
    }
}

/// Fault decorator on [`SrDecodeHop`]: an injected PUCCH loss costs one
/// opportunity per retry, re-entering the probe loop.
struct SrLossGate<H> {
    inner: H,
}

impl<H: Hop> Hop for SrLossGate<H> {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        result: &mut ExperimentResult,
        at: Instant,
        ev: PingEvent,
        fx: &mut HopFx,
    ) {
        let PingEvent::SrOnAir { slot, tx_start } = ev else {
            unreachable!("SrLossGate consumes SrOnAir")
        };
        if exp.injector.sr_lost() {
            let probe = exp.timing.slot_start(slot + 1);
            let next = exp.timing.next_ul_opportunity(probe);
            ctx.ftrace.record(FaultKind::SrLoss, next.tx_start - tx_start);
            result.sr_retx += 1;
            exp.tel.count("mac", "sr_retx", 1);
            exp.tel.journal(JournalEvent::SrAttempt { ping: ctx.id, at: tx_start, lost: true });
            fx.emit(probe, PingEvent::SrTx { probe });
            return;
        }
        exp.tel.journal(JournalEvent::SrAttempt { ping: ctx.id, at: tx_start, lost: false });
        self.inner.handle(exp, ctx, result, at, ev, fx);
    }
}

/// ② The gNB decodes a heard SR: one-symbol PUCCH air time, then PHY +
/// MAC processing.
struct SrDecodeHop;

impl Hop for SrDecodeHop {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        result: &mut ExperimentResult,
        _at: Instant,
        ev: PingEvent,
        fx: &mut HopFx,
    ) {
        let PingEvent::SrOnAir { tx_start, .. } = ev else {
            unreachable!("SrDecodeHop consumes SrOnAir")
        };
        let sr_air = exp.config.duplex.numerology().symbol_offset(1); // one-symbol PUCCH SR
        let sr_rx = tx_start + sr_air;
        fx.span(Side::Ul, StageSpan::new(labels::WAIT_UL_SLOT, ctx.in_rlc, tx_start));
        fx.span(Side::Ul, StageSpan::new(labels::SR, tx_start, sr_rx));
        let d_phy = exp.sample_gnb(|t| &t.phy);
        let d_mac = exp.sample_gnb(|t| &t.mac);
        result.layers.phy.push(d_phy.as_micros_f64());
        result.layers.mac.push(d_mac.as_micros_f64());
        exp.tel.record("phy", "proc_us", d_phy);
        exp.tel.record("mac", "proc_us", d_mac);
        let ready = sr_rx + d_phy + d_mac;
        fx.span(Side::Ul, StageSpan::new(labels::SR_DECODE, sr_rx, ready));
        fx.emit(ready, PingEvent::SrReady);
    }
}

/// ③ The buffer status reaches the scheduler; scheduling happens once per
/// slot, so the first round is booked at the next boundary.
struct UlSchedRequestHop;

impl Hop for UlSchedRequestHop {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        _result: &mut ExperimentResult,
        at: Instant,
        _ev: PingEvent,
        fx: &mut HopFx,
    ) {
        ctx.sr_ready = at;
        exp.sched.on_sr(RNTI, at);
        let boundary = exp.timing.slot_index_at(at) + 1;
        fx.emit(exp.timing.slot_start(boundary), PingEvent::SchedRound { slot: boundary });
    }
}

/// ④ One scheduling round per slot boundary, bounded by
/// [`MAX_SCHED_ROUNDS`] — a ping that cannot be scheduled within the
/// budget is starved out and lost.
struct UlSchedHop;

impl Hop for UlSchedHop {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        _result: &mut ExperimentResult,
        at: Instant,
        ev: PingEvent,
        fx: &mut HopFx,
    ) {
        let PingEvent::SchedRound { slot } = ev else {
            unreachable!("UlSchedHop consumes SchedRound")
        };
        if ctx.sched_rounds == MAX_SCHED_ROUNDS {
            // Starved out of the scheduler entirely. `at` is this round's
            // never-run boundary.
            ctx.ftrace
                .record(FaultKind::GrantWithheld, at - ctx.first_withheld.unwrap_or(ctx.sr_ready));
            fx.lose();
            return;
        }
        ctx.sched_rounds += 1;
        let decision = exp.sched.run_slot(slot);
        match decision.ul_grants.first().copied() {
            Some(g) => {
                fx.emit(g.grant_tx, PingEvent::GrantIssued { grant: g, decision_slot: slot })
            }
            None => {
                let next = slot + 1;
                fx.emit(exp.timing.slot_start(next), PingEvent::SchedRound { slot: next });
            }
        }
    }
}

/// Fault decorator on [`GrantRxHop`]: a withheld grant (injected
/// starvation) is a DCI the UE never decodes; the gNB re-grants once the
/// slot goes unused.
struct GrantGate<H> {
    inner: H,
}

impl<H: Hop> Hop for GrantGate<H> {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        result: &mut ExperimentResult,
        at: Instant,
        ev: PingEvent,
        fx: &mut HopFx,
    ) {
        let PingEvent::GrantIssued { grant, .. } = ev else {
            unreachable!("GrantGate consumes GrantIssued")
        };
        if exp.injector.grant_withheld() {
            result.grants_withheld += 1;
            exp.tel.count("mac", "grants_withheld", 1);
            exp.tel.journal(JournalEvent::FaultInjected {
                kind: FaultKind::GrantWithheld,
                at: grant.grant_tx,
                extra: Duration::ZERO,
            });
            ctx.first_withheld = ctx.first_withheld.or(Some(grant.grant_tx));
            let retry = exp.timing.slot_start(grant.ul.slot + 1);
            exp.sched.on_sr(RNTI, retry);
            let boundary = exp.timing.slot_index_at(retry) + 1;
            fx.emit(exp.timing.slot_start(boundary), PingEvent::SchedRound { slot: boundary });
            return;
        }
        self.inner.handle(exp, ctx, result, at, ev, fx);
    }
}

/// ⑤ The UE decodes the grant DCI (two-symbol CORESET) and prepares the
/// transmission (MAC + the pipelined PHY).
struct GrantRxHop;

impl Hop for GrantRxHop {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        _result: &mut ExperimentResult,
        _at: Instant,
        ev: PingEvent,
        fx: &mut HopFx,
    ) {
        let PingEvent::GrantIssued { grant, decision_slot } = ev else {
            unreachable!("GrantRxHop consumes GrantIssued")
        };
        if let Some(first) = ctx.first_withheld {
            ctx.ftrace.record(FaultKind::GrantWithheld, grant.grant_tx - first);
        }
        fx.span(
            Side::Ul,
            StageSpan::new(labels::SCHE, ctx.sr_ready, exp.timing.slot_start(decision_slot)),
        );
        let dci_air = exp.config.duplex.numerology().symbol_offset(2); // two-symbol CORESET
        let grant_rx = grant.grant_tx + dci_air;
        exp.tel.journal(JournalEvent::Grant {
            ping: ctx.id,
            at: grant_rx,
            bytes: exp.config.grant_bytes(),
        });
        fx.span(Side::Ul, StageSpan::new(labels::UL_GRANT, grant.grant_tx, grant_rx));
        let prep = exp.sample_ue(|t| &t.mac);
        let ue_ready = grant_rx + prep + ctx.ue_phy;
        fx.span(Side::Ul, StageSpan::new(labels::UE_PREP, grant_rx, ue_ready));
        fx.emit(ue_ready, PingEvent::UlTxReady { granted_slot: Some(grant.ul.slot) });
    }
}

/// ⑥ UL data transmission in the granted/next reachable opportunity.
struct UlTxHop;

impl Hop for UlTxHop {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        result: &mut ExperimentResult,
        at: Instant,
        ev: PingEvent,
        fx: &mut HopFx,
    ) {
        let PingEvent::UlTxReady { granted_slot } = ev else {
            unreachable!("UlTxHop consumes UlTxReady")
        };
        let tx_start = exp.ul_tx_start(at, ctx.ue_submit, granted_slot, &mut result.missed_grants);
        fx.span(Side::Ul, StageSpan::new(labels::WAIT_UL_SLOT, at.min(tx_start), tx_start));
        let air = exp.config.data_air_time(ctx.mac_pdus[0].len());
        let tx_end = tx_start + air;
        fx.span(Side::Ul, StageSpan::new(labels::UL_DATA, tx_start, tx_end));
        ctx.delivery = DeliveryState {
            dl: false,
            air,
            grant_bytes: exp.config.grant_bytes(),
            pending: None,
            recovered: None,
        };
        fx.emit(tx_end, PingEvent::AirDeliver);
    }
}

// ---------------------------------------------------------------------
// Delivery + recovery hops (shared by both legs)
// ---------------------------------------------------------------------

/// HARQ/RLC delivery of the transport block whose air time just ended.
/// Channel loss first costs HARQ rounds (§8's retransmission steps), then
/// RLC AM escalations, then — with every budget exhausted — radio link
/// failure, which detours through [`RlfRecoveryHop`].
struct HarqDeliveryHop;

impl Hop for HarqDeliveryHop {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        result: &mut ExperimentResult,
        at: Instant,
        _ev: PingEvent,
        fx: &mut HopFx,
    ) {
        let dl = ctx.delivery.dl;
        let side = if dl { Side::Dl } else { Side::Ul };
        match exp.data_delivery(dl, at, result, &mut ctx.ftrace) {
            Ok(extra) => {
                let done = at + extra;
                if let Some((span_start, failed_at)) = ctx.delivery.pending.take() {
                    // The recovered retransmission got through: close the
                    // recovery's ledger at the delivery instant.
                    fx.span(side, StageSpan::new(labels::PDCP_RECOVER, span_start, done));
                    result.recovery.record(done - failed_at);
                    if let Some(kind) = ctx.ftrace.dominant() {
                        ctx.ftrace.record(kind, done - failed_at);
                    }
                }
                fx.emit(done, if dl { PingEvent::UeRx } else { PingEvent::GnbRx });
            }
            Err(wasted) => {
                let failed_at = at + wasted;
                if let Some((span_start, prev_failed)) = ctx.delivery.pending.take() {
                    // The retried block died too: close the previous
                    // recovery's ledger at this new failure.
                    fx.span(side, StageSpan::new(labels::PDCP_RECOVER, span_start, failed_at));
                    result.recovery.record(failed_at - prev_failed);
                }
                result.rlf.push(RlfEvent {
                    ping: ctx.id,
                    dl,
                    dominant: ctx.ftrace.dominant(),
                    recovered: false,
                });
                exp.tel.journal(JournalEvent::Rlf { ping: ctx.id, dl, at: failed_at });
                fx.emit(failed_at, PingEvent::RlfDetour);
            }
        }
    }
}

/// The RRC re-establishment detour: detect → RACH re-access → RRC
/// processing → PDCP data recovery, then the recovered block is retried
/// over the fresh link (back through [`HarqDeliveryHop`]).
struct RlfRecoveryHop;

impl Hop for RlfRecoveryHop {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        result: &mut ExperimentResult,
        at: Instant,
        _ev: PingEvent,
        fx: &mut HopFx,
    ) {
        let dl = ctx.delivery.dl;
        let side = if dl { Side::Dl } else { Side::Ul };
        let mut spans = Vec::new();
        let outcome = exp.recover_rlf(dl, at, ctx.delivery.grant_bytes, &mut spans, result);
        // Detour spans accrue on both outcomes (a failed data recovery
        // still shows the detect/RACH/reestablish legs it burned).
        for s in spans {
            fx.span(side, s);
        }
        let Some((resume, span_start, pdus)) = outcome else {
            fx.lose();
            return;
        };
        if let Some(ev) = result.rlf.last_mut() {
            ev.recovered = true;
        }
        ctx.delivery.recovered = Some(pdus);
        ctx.delivery.pending = Some((span_start, at));
        fx.emit(resume + ctx.delivery.air, PingEvent::AirDeliver);
    }
}

// ---------------------------------------------------------------------
// gNB receive + backbone hops
// ---------------------------------------------------------------------

/// Fault decorator for fronthaul OS-jitter storms. On the UL receive side
/// (`stretch_span`) the stall lengthens the `Radio` span and is charged
/// to the ping immediately; on the DL prepare side the stall delays the
/// ring submission, and [`RingHop`] charges whatever the missed slot
/// actually costs.
struct StormGate<H> {
    inner: H,
    stretch_span: bool,
}

impl<H: Hop> Hop for StormGate<H> {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        result: &mut ExperimentResult,
        at: Instant,
        ev: PingEvent,
        fx: &mut HopFx,
    ) {
        self.inner.handle(exp, ctx, result, at, ev, fx);
        let storm = exp.injector.storm_delay();
        if self.stretch_span {
            if storm > Duration::ZERO {
                ctx.ftrace.record(FaultKind::JitterStorm, storm);
                exp.tel.record("radio", "storm_us", storm);
                // Infallible: `StormGate` only wraps hops whose happy path
                // pushes exactly one span and one emit (see ring wiring),
                // and `storm > 0` implies the inner hop did not lose the
                // ping — the storm gate draws after the inner hop ran.
                let (_, span) = fx.spans.last_mut().expect("inner pushed its span");
                span.end += storm;
                let emit = fx.emits.last_mut().expect("inner emitted its event");
                emit.0 += storm;
                exp.tel.journal(JournalEvent::FaultInjected {
                    kind: FaultKind::JitterStorm,
                    at: emit.0,
                    extra: storm,
                });
            }
        } else {
            // DL prepare: the stall shifts the submission; the fault cost
            // is settled by the ring outcome.
            ctx.pending_storm = storm;
            if storm > Duration::ZERO {
                exp.tel.record("radio", "storm_us", storm);
                // Infallible: same wrapper invariant as the stretch arm.
                let emit = fx.emits.last_mut().expect("inner emitted its event");
                emit.0 += storm;
                exp.tel.journal(JournalEvent::FaultInjected {
                    kind: FaultKind::JitterStorm,
                    at: emit.0,
                    extra: storm,
                });
            }
        }
    }
}

/// ⑦ The gNB radio head receives the UL samples.
struct GnbRadioHop;

impl Hop for GnbRadioHop {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        _result: &mut ExperimentResult,
        at: Instant,
        _ev: PingEvent,
        fx: &mut HopFx,
    ) {
        let rx_radio = exp.gnb_radio.rx_radio_latency(ctx.ul_samples as u64, &mut exp.rng_gnb);
        let host_rx = at + rx_radio;
        fx.span(Side::Ul, StageSpan::new(labels::RADIO, at, host_rx));
        fx.emit(host_rx, PingEvent::GnbWalk);
    }
}

/// ⑦ The gNB walks the packet up PHY→MAC→RLC→PDCP→SDAP and decodes the
/// actual bytes (through PHY samples), checking byte-exact delivery.
struct GnbWalkHop;

impl Hop for GnbWalkHop {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        result: &mut ExperimentResult,
        at: Instant,
        _ev: PingEvent,
        fx: &mut HopFx,
    ) {
        let d_phy = exp.sample_gnb(|t| &t.phy);
        let d_mac = exp.sample_gnb(|t| &t.mac);
        let d_rlc = exp.sample_gnb(|t| &t.rlc);
        let d_pdcp = exp.sample_gnb(|t| &t.pdcp);
        let d_sdap = exp.sample_gnb(|t| &t.sdap);
        result.layers.phy.push(d_phy.as_micros_f64());
        result.layers.mac.push(d_mac.as_micros_f64());
        result.layers.rlc.push(d_rlc.as_micros_f64());
        result.layers.pdcp.push(d_pdcp.as_micros_f64());
        result.layers.sdap.push(d_sdap.as_micros_f64());
        exp.tel.record("phy", "proc_us", d_phy);
        exp.tel.record("mac", "proc_us", d_mac);
        exp.tel.record("rlc", "proc_us", d_rlc);
        exp.tel.record("pdcp", "proc_us", d_pdcp);
        exp.tel.record("sdap", "proc_us", d_sdap);
        let decoded_at = at + d_phy + d_mac + d_rlc + d_pdcp + d_sdap;
        fx.span(Side::Ul, StageSpan::new(labels::MAC_UP, at, decoded_at));
        // After a recovery, both RLC entities restarted their numbering
        // and the in-flight SDU was PDCP-retransmitted: the recovered MAC
        // PDUs are what actually crossed the air.
        let mac_pdus =
            ctx.delivery.recovered.take().unwrap_or_else(|| std::mem::take(&mut ctx.mac_pdus));
        let air_samples = exp.ue.phy_encode(&mac_pdus[0]);
        let decoded = exp
            .gnb
            .phy_decode(RNTI, &air_samples)
            .ok()
            .and_then(|pdu| exp.gnb.decode_uplink(RNTI, &pdu).ok());
        let mut delivered_ok = matches!(&decoded, Some(v) if v.first() == Some(&ctx.payload));
        // Push any remaining segments through (tiny grants).
        if !delivered_ok {
            if let Some(mut got) = decoded {
                for extra in &mac_pdus[1..] {
                    let s = exp.ue.phy_encode(extra);
                    if let Ok(pdu) = exp.gnb.phy_decode(RNTI, &s) {
                        if let Ok(more) = exp.gnb.decode_uplink(RNTI, &pdu) {
                            got.extend(more);
                        }
                    }
                }
                delivered_ok = got.first() == Some(&ctx.payload);
            }
        }
        if !delivered_ok {
            result.integrity_failures += 1;
        }
        fx.emit(decoded_at, PingEvent::Backbone { dl: false });
    }
}

/// Fault decorator on [`BackboneHop`]: a latency spike on the transport
/// network rides on top of the sampled N3 crossing.
struct SpikeGate<H> {
    inner: H,
}

impl<H: Hop> Hop for SpikeGate<H> {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        result: &mut ExperimentResult,
        at: Instant,
        ev: PingEvent,
        fx: &mut HopFx,
    ) {
        let spike = exp.injector.backbone_spike();
        if spike > Duration::ZERO {
            ctx.ftrace.record(FaultKind::BackboneSpike, spike);
            exp.tel.journal(JournalEvent::FaultInjected {
                kind: FaultKind::BackboneSpike,
                at,
                extra: spike,
            });
        }
        ctx.pending_spike = spike;
        self.inner.handle(exp, ctx, result, at, ev, fx);
    }
}

/// ⑦/⑧ One N3 traversal under GTP-U path supervision — the UL leg ends
/// the request (the server replies immediately), the DL leg carries the
/// reply back to the gNB.
struct BackboneHop;

impl Hop for BackboneHop {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        result: &mut ExperimentResult,
        at: Instant,
        ev: PingEvent,
        fx: &mut HopFx,
    ) {
        let PingEvent::Backbone { dl } = ev else { unreachable!("BackboneHop consumes Backbone") };
        let spike = std::mem::replace(&mut ctx.pending_spike, Duration::ZERO);
        let net = exp.backbone_traverse(at, result, &mut ctx.ftrace) + spike;
        if dl {
            ctx.dl_t0 = at;
            fx.emit(at + net, PingEvent::DlWalkDown);
        } else {
            let ul_done = at + net;
            fx.span(Side::Ul, StageSpan::new(labels::UPF, at, ul_done));
            result.ul.record(ul_done - ctx.t0);
            fx.emit(ul_done, PingEvent::Backbone { dl: true });
        }
    }
}

// ---------------------------------------------------------------------
// Downlink hops
// ---------------------------------------------------------------------

/// ⑧ The reply reaches the gNB and walks down SDAP→PDCP→RLC into the
/// queue; the DL MAC PDU(s) are encoded and the scheduler learns of the
/// data.
struct DlWalkHop;

impl Hop for DlWalkHop {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        result: &mut ExperimentResult,
        at: Instant,
        _ev: PingEvent,
        fx: &mut HopFx,
    ) {
        let d_sdap = exp.sample_gnb(|t| &t.sdap);
        let d_pdcp = exp.sample_gnb(|t| &t.pdcp);
        let d_rlc = exp.sample_gnb(|t| &t.rlc);
        result.layers.sdap.push(d_sdap.as_micros_f64());
        result.layers.pdcp.push(d_pdcp.as_micros_f64());
        result.layers.rlc.push(d_rlc.as_micros_f64());
        exp.tel.record("sdap", "proc_us", d_sdap);
        exp.tel.record("pdcp", "proc_us", d_pdcp);
        exp.tel.record("rlc", "proc_us", d_rlc);
        let in_rlc_q = at + d_sdap + d_pdcp + d_rlc;
        fx.span(Side::Dl, StageSpan::new(labels::SDAP_DOWN, at, in_rlc_q));
        ctx.reply = make_payload(ctx.id | 0x8000_0000_0000_0000, exp.config.payload_bytes);
        // Infallible by construction: `slot_capacity_bytes()` derives the
        // DL slot budget from the same config that sizes the reply, and the
        // session for UE_ADDR was registered at experiment setup.
        let cap = exp.config.slot_capacity_bytes();
        let (_rnti, dl_pdus) =
            exp.gnb.encode_downlink(UE_ADDR, &ctx.reply, cap).expect("DL slot sized for reply");
        ctx.dl_samples = phy::transport::sample_count(
            phy::transport::ShChConfig { modulation: phy::modulation::Modulation::Qpsk, c_init: 0 },
            dl_pdus[0].len(),
        );
        exp.sched.on_dl_data(RNTI, dl_pdus[0].len(), in_rlc_q);
        ctx.dl_pdus = dl_pdus;
        ctx.in_rlc_q = in_rlc_q;
        let boundary = exp.timing.slot_index_at(in_rlc_q) + 1;
        fx.emit(exp.timing.slot_start(boundary), PingEvent::DlSched { slot: boundary });
    }
}

/// ⑨ One DL scheduling round per slot boundary. The MAC pulls the data
/// from the RLC queue when it builds the transport block (the configured
/// [`DlPullPoint`]) — that pull instant ends the Table 2 "RLC-q"
/// interval.
struct DlSchedHop;

impl Hop for DlSchedHop {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        result: &mut ExperimentResult,
        at: Instant,
        ev: PingEvent,
        fx: &mut HopFx,
    ) {
        let PingEvent::DlSched { slot } = ev else { unreachable!("DlSchedHop consumes DlSched") };
        if ctx.dl_sched_rounds == MAX_SCHED_ROUNDS {
            // The scheduler never served the reply: the ping is lost.
            fx.lose();
            return;
        }
        ctx.dl_sched_rounds += 1;
        let decision = exp.sched.run_slot(slot);
        let Some(assign) = decision.dl_assignments.first().copied() else {
            let next = slot + 1;
            fx.emit(exp.timing.slot_start(next), PingEvent::DlSched { slot: next });
            return;
        };
        let dl_tx = assign.dl.tx_start;
        let decision_time = at; // == slot_start(slot): this round's boundary
        let tb_build = match exp.config.dl_pull {
            DlPullPoint::AtDecision => decision_time,
            DlPullPoint::SlotsBeforeAir(slots) => decision_time
                .max(dl_tx.saturating_sub(exp.config.duplex.slot_duration().saturating_mul(slots))),
        };
        result.layers.rlcq.push((tb_build - ctx.in_rlc_q).as_micros_f64());
        exp.tel.record("rlc", "queue_us", tb_build - ctx.in_rlc_q);
        fx.span(Side::Dl, StageSpan::new(labels::RLC_Q, ctx.in_rlc_q, tb_build));
        fx.emit(tb_build, PingEvent::DlPrepare { dl_tx });
    }
}

/// ⑩ DL MAC/PHY prepare the slot and submit samples to the radio; they
/// must beat the air time (§4's margin, §6's reliability risk).
struct DlPrepHop;

impl Hop for DlPrepHop {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        result: &mut ExperimentResult,
        at: Instant,
        ev: PingEvent,
        fx: &mut HopFx,
    ) {
        let PingEvent::DlPrepare { dl_tx } = ev else {
            unreachable!("DlPrepHop consumes DlPrepare")
        };
        let d_mac = exp.sample_gnb(|t| &t.mac);
        let d_phy = exp.sample_gnb(|t| &t.phy);
        result.layers.mac.push(d_mac.as_micros_f64());
        result.layers.phy.push(d_phy.as_micros_f64());
        exp.tel.record("mac", "proc_us", d_mac);
        exp.tel.record("phy", "proc_us", d_phy);
        let submit = exp.gnb_radio.tx_radio_latency(ctx.dl_samples as u64, &mut exp.rng_gnb);
        fx.emit(at + d_mac + d_phy + submit, PingEvent::RingSubmit { dl_tx });
    }
}

/// ⑩ The TX ring checks the deadline: on-time samples fly in the assigned
/// slot; an underrun corrupts it and the block retransmits at the next DL
/// opportunity the samples can make.
struct RingHop;

impl Hop for RingHop {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        _result: &mut ExperimentResult,
        at: Instant,
        ev: PingEvent,
        fx: &mut HopFx,
    ) {
        let PingEvent::RingSubmit { dl_tx } = ev else {
            unreachable!("RingHop consumes RingSubmit")
        };
        let storm = std::mem::replace(&mut ctx.pending_storm, Duration::ZERO);
        let outcome = exp.ring.submit(at, dl_tx);
        let dl_tx = if outcome.is_on_time() {
            if storm > Duration::ZERO {
                ctx.ftrace.record(FaultKind::JitterStorm, Duration::ZERO);
            }
            dl_tx
        } else {
            let retry = exp.timing.next_dl_opportunity(at).tx_start;
            if storm > Duration::ZERO {
                ctx.ftrace.record(FaultKind::JitterStorm, retry - dl_tx);
            }
            retry
        };
        let air = exp.config.data_air_time(ctx.dl_pdus[0].len());
        fx.span(Side::Dl, StageSpan::new(labels::DL_DATA, dl_tx, dl_tx + air));
        ctx.delivery = DeliveryState {
            dl: true,
            air,
            grant_bytes: exp.config.slot_capacity_bytes(),
            pending: None,
            recovered: None,
        };
        fx.emit(dl_tx + air, PingEvent::AirDeliver);
    }
}

/// ⑪ The UE receives the reply, walks it up radio→PHY→RLC→PDCP→SDAP and
/// decodes the actual bytes; the ping's latencies are recorded here.
struct UeRxHop;

impl Hop for UeRxHop {
    fn handle(
        &self,
        exp: &mut PingExperiment,
        ctx: &mut PingCtx,
        result: &mut ExperimentResult,
        at: Instant,
        _ev: PingEvent,
        fx: &mut HopFx,
    ) {
        let ue_rx_radio = exp.ue_radio.rx_radio_latency(ctx.dl_samples as u64, &mut exp.rng_ue);
        let ue_phy = exp.sample_ue(|t| &t.phy);
        let ue_upper =
            exp.sample_ue(|t| &t.rlc) + exp.sample_ue(|t| &t.pdcp) + exp.sample_ue(|t| &t.sdap);
        let delivered = at + ue_rx_radio + ue_phy + ue_upper;
        fx.span(Side::Dl, StageSpan::new(labels::PHY_UP, at, delivered));
        // Decode the actual bytes (the recovered PDUs when an RLF detour
        // re-established the bearer mid-reply).
        let dl_pdus =
            ctx.delivery.recovered.take().unwrap_or_else(|| std::mem::take(&mut ctx.dl_pdus));
        let air_samples = exp.gnb.phy_encode(RNTI, &dl_pdus[0]);
        let got =
            exp.ue.phy_decode(&air_samples).ok().and_then(|pdu| exp.ue.decode_downlink(&pdu).ok());
        let mut ok = matches!(&got, Some(v) if v.first() == Some(&ctx.reply));
        if !ok {
            if let Some(mut v) = got {
                for extra in &dl_pdus[1..] {
                    let s = exp.gnb.phy_encode(RNTI, extra);
                    if let Ok(pdu) = exp.ue.phy_decode(&s) {
                        if let Ok(more) = exp.ue.decode_downlink(&pdu) {
                            v.extend(more);
                        }
                    }
                }
                ok = v.first() == Some(&ctx.reply);
            }
        }
        if !ok {
            result.integrity_failures += 1;
        }
        result.dl.record(delivered - ctx.dl_t0);
        let rtt = delivered - ctx.t0;
        result.rtt.record(rtt);
        result.attribution.record_delivered(rtt <= exp.config.deadline, ctx.ftrace.dominant());
        fx.done();
    }
}
