//! Multi-UE uplink scalability — the paper's §9 open problem, as an
//! experiment.
//!
//! §5 establishes that grant-free access is the low-latency choice but
//! "cannot scale to many UEs as these pre-allocated resources are limited
//! and can be wasted if there are no uplink packets"; §9 asks how latency
//! behaves as the UE population grows. This module simulates `n` UEs
//! sharing one cell's uplink:
//!
//! * **Grant-free**: every UE owns a share of each UL opportunity. Once
//!   the per-slot capacity is exhausted (`n · grant > capacity`), UEs are
//!   rotated across opportunities round-robin, multiplying their access
//!   period — latency grows in capacity-quantised steps. Opportunities a
//!   UE owns but does not use are *wasted* (the §5 cost).
//! * **Grant-based**: SRs are one bit and effectively never contend, but
//!   the granted data transmissions share the same slot capacity, and the
//!   per-round scheduler work grows with the attached population (§7:
//!   "higher number of UEs might increase the processing times
//!   noticeably").

use ran::sched::{AccessMode, Scheduler, SchedulerConfig};
use serde::Serialize;
use sim::{Dist, Duration, EventQueue, Instant, Recording, SimRng};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::config::StackConfig;
use crate::node::StackError;

/// UEs per sub-shard when a grant-free population point is split across
/// workers (mirrors `BATCH_PINGS` for ping batches): big enough to
/// amortise per-shard setup, small enough that one 256-UE point becomes
/// several units of work instead of one wall-time-dominating shard.
const SUB_SHARD_UES: usize = 64;

/// Configuration of the scalability experiment.
#[derive(Debug, Clone)]
pub struct MultiUeConfig {
    /// The single-UE system configuration to scale.
    pub base: StackConfig,
    /// Number of attached UEs.
    pub n_ues: usize,
    /// Mean interval between uplink packets per UE (Poisson).
    pub mean_interval: Duration,
    /// Packets per UE to simulate.
    pub packets_per_ue: u64,
    /// Fractional growth of gNB scheduling/decoding work per attached UE
    /// (0.01 = +1 % per UE).
    pub sched_scaling_per_ue: f64,
}

impl MultiUeConfig {
    /// A testbed-based scalability setup.
    pub fn testbed(access: AccessMode, n_ues: usize) -> MultiUeConfig {
        MultiUeConfig {
            base: StackConfig::testbed_dddu(access, true),
            n_ues,
            mean_interval: Duration::from_millis(20),
            packets_per_ue: 60,
            sched_scaling_per_ue: 0.01,
        }
    }
}

/// Result of a scalability run.
#[derive(Debug, Clone, Serialize)]
pub struct MultiUeResult {
    /// UE population.
    pub n_ues: usize,
    /// One-way uplink latency across all UEs (arrival → decoded at gNB).
    /// Recorded fixed-memory ([`Recording::fixed`]): this is a scale path,
    /// and per-sample storage would grow with `n_ues × packets_per_ue`.
    pub ul: Recording,
    /// Grant-free only: fraction of owned transmission opportunities that
    /// carried no data (the wasted pre-allocation of §5).
    pub wasted_fraction: Option<f64>,
    /// Grant-free only: how many UL opportunities each UE must wait
    /// between its owned ones (1 = every opportunity).
    pub rotation_period: Option<u64>,
}

/// Runs the experiment. A configuration whose load cannot drain its own
/// scheduler (or whose opportunity rotation never cycles) surfaces as
/// [`StackError::Diverged`] instead of aborting the whole sweep.
pub fn run_multi_ue(config: &MultiUeConfig) -> Result<MultiUeResult, StackError> {
    match config.base.access {
        AccessMode::GrantFree => run_grant_free(config),
        AccessMode::GrantBased => run_grant_based(config),
    }
}

/// Schedules Poisson arrivals for UEs `ue_start..ue_start + ue_len` on one
/// event queue. Per-UE times ascend and UEs are pushed in index order, so
/// the queue's `(time, FIFO)` pop order is exactly the old sorted
/// `(arrival, ue)` sweep — but the arrivals now share the same
/// future-event machinery as the ping walk. Each UE's stream is keyed by
/// its *global* index, so any partition of the population draws the same
/// arrivals.
fn arrival_queue(
    config: &MultiUeConfig,
    rng: &SimRng,
    ue_start: usize,
    ue_len: usize,
) -> EventQueue<usize> {
    let mut queue = EventQueue::new();
    for ue in ue_start..ue_start + ue_len {
        let mut r = rng.stream_indexed("ue-arrivals", ue as u64);
        let inter = Dist::Exponential { mean: config.mean_interval };
        // Random phase so UEs are not synchronised.
        let mut t = Instant::ZERO
            + Dist::Uniform { lo: Duration::ZERO, hi: config.mean_interval }.sample(&mut r);
        for _ in 0..config.packets_per_ue {
            t += inter.sample(&mut r);
            queue.push(t, ue);
        }
    }
    queue
}

/// Mean UE-side prep (upper layers + MAC + PHY) for latency accounting.
fn ue_prep(config: &MultiUeConfig) -> Duration {
    config.base.ue_timings.mean_total()
}

/// Mean gNB-side decode (PHY..SDAP), inflated by the population.
fn gnb_decode(config: &MultiUeConfig) -> Duration {
    let base = config.base.gnb_timings.mean_total();
    Duration::from_micros_f64(
        base.as_micros_f64() * (1.0 + config.sched_scaling_per_ue * config.n_ues as f64),
    )
}

/// Partial grant-free result for one UE range. Every field merges
/// commutatively (histogram buckets, a per-UE-keyed used count, a max), so
/// any partition of the population into spans reduces to the identical
/// [`MultiUeResult`].
struct GrantFreeSpan {
    ul: Recording,
    used: u64,
    horizon: Instant,
}

/// Runs the grant-free experiment for UEs `ue_start..ue_start + ue_len`.
/// Each arrival's latency is a pure function of its own arrival time and
/// the (population-derived) rotation parameters — no shared scheduler
/// state — which is what makes the per-UE split sound.
fn grant_free_span(
    config: &MultiUeConfig,
    rng: &SimRng,
    ue_start: usize,
    ue_len: usize,
) -> Result<GrantFreeSpan, StackError> {
    let duplex = &config.base.duplex;
    let capacity = config.base.slot_capacity_bytes();
    let grant = config.base.grant_bytes();
    let per_slot_ues = (capacity / grant).max(1);
    // Rotation: how many UL opportunities pass between a UE's owned ones.
    let rotation = config.n_ues.div_ceil(per_slot_ues).max(1) as u64;

    let prep = ue_prep(config);
    let decode = gnb_decode(config);
    let mut ul = Recording::fixed();
    // (ue, ordinal) pairs are keyed by the UE, and every arrival of a UE
    // lands in its own span — so per-span dedup equals global dedup.
    let mut used_pairs: BTreeSet<(usize, u64)> = BTreeSet::new();
    let mut horizon = Instant::ZERO;

    let mut queue = arrival_queue(config, rng, ue_start, ue_len);
    while let Some((arrival, ue)) = queue.pop() {
        let ready = arrival + prep;
        // The UE's owned opportunities are every `rotation`-th UL
        // opportunity, offset by its index.
        let mut op = duplex.next_ul_opportunity(ready);
        let mut op_index = op.slot; // opportunity counting via slot index
        let residue = ue as u64 % rotation;
        // Walk forward until the opportunity index matches the UE's turn.
        let mut guard = 0;
        while ul_op_ordinal(duplex, op_index) % rotation != residue {
            op = duplex.next_ul_opportunity(duplex.slot_start(op.slot + 1));
            op_index = op.slot;
            guard += 1;
            if guard >= 10_000 {
                return Err(StackError::Diverged(format!(
                    "rotation search found no owned opportunity for ue {ue} \
                     (rotation {rotation}) within 10000 slots"
                )));
            }
        }
        let done = op.tx_start + config.base.data_air_time(config.base.payload_bytes + 32) + decode;
        ul.record(done - arrival);
        used_pairs.insert((ue, ul_op_ordinal(duplex, op.slot)));
        horizon = horizon.max(done);
    }
    Ok(GrantFreeSpan { ul, used: used_pairs.len() as u64, horizon })
}

/// Assembles the full grant-free result from merged spans.
fn grant_free_result(
    config: &MultiUeConfig,
    ul: Recording,
    used: u64,
    horizon: Instant,
) -> MultiUeResult {
    let capacity = config.base.slot_capacity_bytes();
    let grant = config.base.grant_bytes();
    let per_slot_ues = (capacity / grant).max(1);
    let rotation = config.n_ues.div_ceil(per_slot_ues).max(1) as u64;
    // Owned-but-unused opportunities: each UE owns one opportunity per
    // rotation period over the whole horizon.
    let total_ul_ops = count_ul_ops(&config.base.duplex, horizon);
    let owned_per_ue = total_ul_ops / rotation;
    let owned_total = owned_per_ue * config.n_ues as u64;
    let wasted = owned_total.saturating_sub(used);
    MultiUeResult {
        n_ues: config.n_ues,
        ul,
        wasted_fraction: Some(if owned_total == 0 {
            0.0
        } else {
            wasted as f64 / owned_total as f64
        }),
        rotation_period: Some(rotation),
    }
}

fn run_grant_free(config: &MultiUeConfig) -> Result<MultiUeResult, StackError> {
    let rng = SimRng::from_seed(config.base.seed);
    let mut ul = Recording::fixed();
    let mut used = 0u64;
    let mut horizon = Instant::ZERO;
    for (start, len) in sim::parallel::shard_ranges(config.n_ues as u64, SUB_SHARD_UES as u64) {
        let span = grant_free_span(config, &rng, start as usize, len as usize)?;
        ul.merge(&span.ul);
        used += span.used;
        horizon = horizon.max(span.horizon);
    }
    Ok(grant_free_result(config, ul, used, horizon))
}

/// Ordinal of the UL opportunity carried by `slot` (how many UL-capable
/// slots precede it).
fn ul_op_ordinal(duplex: &phy::duplex::Duplex, slot: u64) -> u64 {
    match duplex {
        phy::duplex::Duplex::Fdd { .. } => slot,
        phy::duplex::Duplex::Tdd(c) => {
            let per = c.slots_per_period();
            let ul_per_period = (0..per).filter(|&s| c.slot_kind(s).has_ul()).count() as u64;
            let full = slot / per;
            let within = (0..(slot % per)).filter(|&s| c.slot_kind(s).has_ul()).count() as u64;
            full * ul_per_period + within
        }
    }
}

/// Number of UL opportunities up to `horizon`.
fn count_ul_ops(duplex: &phy::duplex::Duplex, horizon: Instant) -> u64 {
    let slots = horizon.as_nanos() / duplex.slot_duration().as_nanos();
    ul_op_ordinal(duplex, slots)
}

fn run_grant_based(config: &MultiUeConfig) -> Result<MultiUeResult, StackError> {
    let duplex = config.base.duplex.clone();
    let mut sched_cfg: SchedulerConfig = config.base.scheduler_config();
    sched_cfg.access = AccessMode::GrantBased;
    let mut sched = Scheduler::new(sched_cfg);
    let prep = ue_prep(config);
    let decode = gnb_decode(config);
    // Scheduler work grows with the population: SR decode inflates too.
    let sr_decode = Duration::from_micros_f64(
        100.0 * (1.0 + config.sched_scaling_per_ue * config.n_ues as f64),
    );
    let rng = SimRng::from_seed(config.base.seed);
    let mut ul = Recording::fixed();
    // FIFO of outstanding arrivals per UE, so grants (possibly served in a
    // later round than they were requested) are attributed correctly.
    let mut outstanding: BTreeMap<u16, VecDeque<Instant>> = BTreeMap::new();
    let air = config.base.data_air_time(config.base.payload_bytes + 32);

    // A grant for an RNTI that never sent an SR, or for a UE whose every
    // outstanding packet was already served, means the scheduler's grant
    // queue and our arrival ledger have diverged — reachable when a
    // saturated scheduler re-issues grants past its own bookkeeping, so
    // it surfaces as a typed error instead of a panic.
    let serve = |decision: ran::sched::SlotDecision,
                 outstanding: &mut BTreeMap<u16, VecDeque<Instant>>,
                 ul: &mut Recording|
     -> Result<(), StackError> {
        for grant in decision.ul_grants {
            let queue = outstanding.get_mut(&grant.rnti).ok_or_else(|| {
                StackError::Diverged(format!(
                    "scheduler granted rnti {} which never requested uplink",
                    grant.rnti
                ))
            })?;
            let arrival = queue.pop_front().ok_or_else(|| {
                StackError::Diverged(format!(
                    "scheduler over-granted rnti {}: no outstanding packet",
                    grant.rnti
                ))
            })?;
            ul.record(grant.ul.tx_start + air + decode - arrival);
        }
        Ok(())
    };

    let mut last_boundary = 0u64;
    let mut queue = arrival_queue(config, &rng, 0, config.n_ues);
    while let Some((arrival, ue)) = queue.pop() {
        let ready = arrival + prep;
        // SR: one bit in the next UL opportunity (no contention).
        let sr_op = duplex.next_ul_opportunity(ready);
        let sr_visible = sr_op.tx_start + duplex.numerology().symbol_offset(1) + sr_decode;
        outstanding.entry(ue as u16).or_default().push_back(arrival);
        sched.on_sr(ue as u16, sr_visible);
        // Keep scheduler invocations monotone.
        let boundary = (duplex.slot_index_at(sr_visible) + 1).max(last_boundary);
        last_boundary = boundary;
        serve(sched.run_slot(boundary), &mut outstanding, &mut ul)?;
    }
    // Flush any SRs deferred past the last boundary.
    let mut guard = 0;
    while sched.backlog().0 > 0 {
        last_boundary += 1;
        serve(sched.run_slot(last_boundary), &mut outstanding, &mut ul)?;
        guard += 1;
        if guard >= 100_000 {
            return Err(StackError::Diverged(format!(
                "scheduler holds {} SRs it cannot drain within 100000 flush rounds \
                 ({} UEs over-saturate the cell)",
                sched.backlog().0,
                config.n_ues,
            )));
        }
    }

    Ok(MultiUeResult { n_ues: config.n_ues, ul, wasted_fraction: None, rotation_period: None })
}

/// Sweeps the UE population, returning one result per point. The sweep is
/// bit-identical regardless of worker count. The first diverging point
/// fails the whole sweep (points are independent, so one divergence means
/// the configuration itself is bad, not the neighbours).
///
/// Sharding is two-level: grant-free points split into [`SUB_SHARD_UES`]
/// UE ranges (the way ping batches split into `BATCH_PINGS`), so the
/// largest population no longer occupies one worker for the whole sweep
/// while the rest idle. The split is sound because a grant-free arrival's
/// latency depends only on its own UE's stream and the population-derived
/// rotation — spans merge commutatively into the identical result.
/// Grant-based points stay whole: their scheduler state is shared across
/// every arrival of the run.
pub fn scalability_sweep(
    access: AccessMode,
    populations: &[usize],
    seed: u64,
) -> Result<Vec<MultiUeResult>, StackError> {
    enum Shard {
        Whole(usize),
        Span { point: usize, start: usize, len: usize },
    }
    enum Out {
        Whole(MultiUeResult),
        Span(GrantFreeSpan),
    }
    let configs: Vec<MultiUeConfig> = populations
        .iter()
        .map(|&n| {
            let mut cfg = MultiUeConfig::testbed(access, n);
            cfg.base = cfg.base.with_seed(seed);
            cfg
        })
        .collect();
    let mut shards = Vec::new();
    for (point, &n) in populations.iter().enumerate() {
        match access {
            AccessMode::GrantFree => {
                for (start, len) in sim::parallel::shard_ranges(n as u64, SUB_SHARD_UES as u64) {
                    shards.push(Shard::Span { point, start: start as usize, len: len as usize });
                }
            }
            AccessMode::GrantBased => shards.push(Shard::Whole(point)),
        }
    }
    let outs = sim::parallel::run_shards(shards.len(), |i| match shards[i] {
        Shard::Whole(point) => run_multi_ue(&configs[point]).map(|r| (point, Out::Whole(r))),
        Shard::Span { point, start, len } => {
            let cfg = &configs[point];
            let rng = SimRng::from_seed(cfg.base.seed);
            grant_free_span(cfg, &rng, start, len).map(|s| (point, Out::Span(s)))
        }
    });
    // Reduce in shard-index order; spans of one point are contiguous.
    let mut results: Vec<Option<MultiUeResult>> = Vec::new();
    results.resize_with(populations.len(), || None);
    let mut partial: Vec<(Recording, u64, Instant)> =
        populations.iter().map(|_| (Recording::fixed(), 0u64, Instant::ZERO)).collect();
    for out in outs {
        let (point, out) = out?;
        match out {
            Out::Whole(r) => results[point] = Some(r),
            Out::Span(s) => {
                let acc = &mut partial[point];
                acc.0.merge(&s.ul);
                acc.1 += s.used;
                acc.2 = acc.2.max(s.horizon);
            }
        }
    }
    Ok(results
        .into_iter()
        .zip(partial)
        .zip(&configs)
        .map(|((whole, (ul, used, horizon)), cfg)| match whole {
            Some(r) => r,
            None => grant_free_result(cfg, ul, used, horizon),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_free_latency_is_flat_then_grows() {
        let results =
            scalability_sweep(AccessMode::GrantFree, &[1, 4, 16, 64, 256], 1).expect("converges");
        let means: Vec<f64> = results
            .iter()
            .map(|r| {
                let mut rec = r.ul.clone();
                rec.summary().mean_us
            })
            .collect();
        // Few UEs: everyone fits each opportunity — statistically identical
        // latency (the difference is arrival-sampling noise).
        assert!((means[0] - means[1]).abs() < 250.0, "{means:?}");
        // Many UEs: rotation forces multi-period waits.
        assert!(means[4] > 2.0 * means[0], "{means:?}");
        // Rotation period reflects the capacity quantisation.
        assert_eq!(results[0].rotation_period, Some(1));
        assert!(results[4].rotation_period.unwrap() > 1);
    }

    #[test]
    fn grant_free_wastes_resources_at_low_load_and_rotates_at_high_load() {
        // §5's two costs, visible at the two ends of the sweep: with few
        // UEs most pre-allocated opportunities idle (waste); with many UEs
        // the rotation period grows (latency). You cannot win both.
        let results =
            scalability_sweep(AccessMode::GrantFree, &[1, 32, 128], 2).expect("converges");
        let waste: Vec<f64> = results.iter().map(|r| r.wasted_fraction.unwrap()).collect();
        assert!(waste[0] > 0.8, "sparse traffic should idle most allocations: {waste:?}");
        assert!(waste[0] > waste[2], "saturation uses up the pool: {waste:?}");
        assert!(results[2].rotation_period.unwrap() > 4 * results[0].rotation_period.unwrap());
    }

    #[test]
    fn grant_based_scales_more_gracefully_but_starts_higher() {
        // Compare within the stable-load region (the cell carries ~3.5
        // grants/ms; 48 UEs at one packet per 20 ms offer ~2.4/ms).
        let gf = scalability_sweep(AccessMode::GrantFree, &[1, 48], 3).expect("converges");
        let gb = scalability_sweep(AccessMode::GrantBased, &[1, 48], 3).expect("converges");
        let mean = |r: &MultiUeResult| {
            let mut rec = r.ul.clone();
            rec.summary().mean_us
        };
        // Single UE: grant-free is faster (no handshake).
        assert!(mean(&gf[0]) < mean(&gb[0]), "gf {} gb {}", mean(&gf[0]), mean(&gb[0]));
        // Large population: grant-free degrades far more than grant-based.
        let gf_growth = mean(&gf[1]) / mean(&gf[0]);
        let gb_growth = mean(&gb[1]) / mean(&gb[0]);
        assert!(
            gf_growth > 1.5 * gb_growth,
            "gf growth {gf_growth:.2} vs gb growth {gb_growth:.2}"
        );
    }

    #[test]
    fn all_packets_are_recorded() {
        let mut cfg = MultiUeConfig::testbed(AccessMode::GrantFree, 8);
        cfg.packets_per_ue = 20;
        let r = run_multi_ue(&cfg).expect("converges");
        assert_eq!(r.ul.count(), 8 * 20);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = scalability_sweep(AccessMode::GrantFree, &[16], 9).expect("converges");
        let b = scalability_sweep(AccessMode::GrantFree, &[16], 9).expect("converges");
        assert_eq!(a[0].wasted_fraction, b[0].wasted_fraction);
        let (mut ra, mut rb) = (a[0].ul.clone(), b[0].ul.clone());
        assert_eq!(ra.summary(), rb.summary());
    }
}
