//! Inter-cell mobility: a two-gNB topology, a moving UE, and the Xn
//! handover keeping a downlink URLLC stream lossless across cell changes.
//!
//! The paper's testbed is stationary; this experiment asks the obvious
//! next question — what mobility does to the tail. A UE shuttles between
//! two cells on a straight line while a constant-bit-rate downlink stream
//! runs. The [`ran::HandoverEntity`] clockwork drives the control plane
//! (A3 → Xn preparation → reconfiguration-with-sync → RACH → complete);
//! this module owns the data plane:
//!
//! * PDCP PDUs transmitted during the interruption window stay in the
//!   source gNB's retransmission buffer;
//! * at completion, an SN STATUS TRANSFER hands the downlink COUNT to the
//!   target and the buffered PDUs are replayed through a real
//!   [`corenet::XnForwardingTunnel`] (byte-level GTP-U), closed by an end
//!   marker after the UPF path switch;
//! * the UE's PDCP entity sees one contiguous, in-order COUNT sequence —
//!   the *lossless handover* property the report asserts.
//!
//! The `sim::faults` handover process injects the mobility failure
//! taxonomy — too-late, too-early, ping-pong, forwarding-tunnel loss —
//! and every mode recovers (re-establishment or re-forwarding) with typed
//! per-packet attribution, never a drop.

use std::collections::VecDeque;

use bytes::Bytes;
use corenet::gtpu::GtpuHeader;
use corenet::{SnStatusTransfer, Upf, XnForwardingTunnel, XnReceiver};
use ran::pdcp::Direction;
use ran::{HandoverEntity, PdcpConfig, PdcpEntity, PdcpStatusReport, RrcEntity};
use sim::{
    Duration, FaultAttribution, FaultInjector, FaultKind, FaultTally, Instant, LatencyRecorder,
    PingFaultTrace, SimRng,
};
use telemetry::{ExemplarOutcome, ExemplarSpan, JournalEvent, Profiler, TailExemplar, Telemetry};

use crate::config::StackConfig;

/// UE IP address in the UPF session table.
const UE_ADDR: u32 = 1;
/// Downlink TEIDs of the two cells' N3 tunnels.
const CELL_TEID: [u32; 2] = [0x11, 0x22];
/// Forwarding-tunnel TEID base (per-target offset).
const FWD_TEID: u32 = 0xF000;
/// PDCP bearer identity of the stream.
const BEARER: u8 = 1;
/// Ping-pong bounces allowed per A3 trigger before the (modelled) network
/// pins the UE to its current cell — bounds the chain even under an
/// injected bounce probability of 1.
const MAX_BOUNCES: u32 = 8;

/// The UE's radio environment: two gNBs on a line, the UE shuttling
/// between them in a triangle wave, log-distance pathloss mapping
/// position to per-cell RSRP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalTrajectory {
    /// UE speed along the line, m/s.
    pub speed_mps: f64,
    /// Distance between the two gNBs, metres (cell 0 at 0, cell 1 at
    /// `cell_spacing_m`).
    pub cell_spacing_m: f64,
    /// Near turn-around point of the shuttle, metres from cell 0.
    pub lo_m: f64,
    /// Far turn-around point, metres from cell 0.
    pub hi_m: f64,
    /// Cell transmit power, dBm (both cells equal).
    pub tx_power_dbm: f64,
}

impl SignalTrajectory {
    /// Two cells 200 m apart, the UE shuttling 20 m–180 m — each leg
    /// crosses the cell border once, so every leg demands one handover.
    pub fn intercell(speed_mps: f64) -> SignalTrajectory {
        SignalTrajectory {
            speed_mps,
            cell_spacing_m: 200.0,
            lo_m: 20.0,
            hi_m: 180.0,
            tx_power_dbm: 30.0,
        }
    }

    /// Simulated time of one full leg (lo → hi or back).
    pub fn leg_duration(&self) -> Duration {
        Duration::from_micros(((self.hi_m - self.lo_m) / self.speed_mps * 1e6) as u64)
    }

    /// UE position at `at`, metres from cell 0: a triangle wave starting
    /// at `lo_m` moving outward.
    pub fn position_m(&self, at: Instant) -> f64 {
        let span = self.hi_m - self.lo_m;
        let travelled = self.speed_mps * at.as_nanos() as f64 * 1e-9;
        let phase = travelled % (2.0 * span);
        self.lo_m + if phase <= span { phase } else { 2.0 * span - phase }
    }

    /// RSRP from `cell` (0 or 1) at `at`: log-distance pathloss
    /// `PL = 128.1 + 37.6·log10(d_km)` (the 3GPP macro model), distance
    /// floored at 10 m.
    pub fn rsrp_dbm(&self, cell: usize, at: Instant) -> f64 {
        let cell_m = if cell == 0 { 0.0 } else { self.cell_spacing_m };
        let d_km = ((self.position_m(at) - cell_m).abs().max(10.0)) / 1000.0;
        self.tx_power_dbm - (128.1 + 37.6 * d_km.log10())
    }
}

/// One mobility run: a stack configuration, a trajectory, and the
/// downlink stream riding across the handovers.
#[derive(Debug, Clone)]
pub struct MobilityConfig {
    /// Stack configuration: handover policy, RACH/RRC timing, fault plan,
    /// seed, deadline.
    pub stack: StackConfig,
    /// The radio environment.
    pub trajectory: SignalTrajectory,
    /// Downlink packet period of the CBR stream.
    pub packet_interval: Duration,
    /// Total packets offered.
    pub n_packets: u64,
    /// Measurement-occasion period (A3 sampling).
    pub meas_period: Duration,
}

impl MobilityConfig {
    /// A run long enough for `legs` full traversals (each leg crosses the
    /// cell border once), with a 2 ms CBR stream and 5 ms measurements.
    pub fn for_speed(stack: StackConfig, speed_mps: f64, legs: u32) -> MobilityConfig {
        let trajectory = SignalTrajectory::intercell(speed_mps);
        let packet_interval = Duration::from_millis(2);
        let n_packets =
            trajectory.leg_duration().as_nanos() * u64::from(legs) / packet_interval.as_nanos();
        MobilityConfig {
            stack,
            trajectory,
            packet_interval,
            n_packets,
            meas_period: Duration::from_millis(5),
        }
    }
}

/// What one mobility run produced.
#[derive(Debug, Clone)]
pub struct MobilityReport {
    /// Packets offered to the stream.
    pub offered: u64,
    /// Packets delivered to the UE.
    pub delivered: u64,
    /// Packets still buffered anywhere at the end (0 after the final
    /// flush — the conservation check).
    pub in_flight: u64,
    /// Packets dropped (always 0: the handover is lossless).
    pub drops: u64,
    /// Packets delivered out of order (always 0: PDCP reorders).
    pub out_of_order: u64,
    /// Handover executions started (A3 fires plus ping-pong bounces).
    pub handovers: u64,
    /// Handovers completing via the Xn procedure.
    pub completed: u64,
    /// Too-late failures (RLF before the command; re-establishment).
    pub too_late: u64,
    /// Too-early failures (T304 expiry; re-establishment).
    pub too_early: u64,
    /// Ping-pong bounces (immediate handover back).
    pub ping_pongs: u64,
    /// Forwarding-tunnel losses (batch re-forwarded).
    pub forwarding_losses: u64,
    /// Service-interruption samples, one per handover window
    /// (detach → data resumption, failures included).
    pub interruption: LatencyRecorder,
    /// Per-packet delivery latency.
    pub latency: LatencyRecorder,
    /// Deadline attribution split by dominating fault.
    pub attribution: FaultAttribution,
    /// Injected-fault event counts.
    pub tally: FaultTally,
}

impl MobilityReport {
    /// Packet conservation: every offered packet is delivered, still in
    /// flight, or (never, in this design) dropped.
    pub fn conserved(&self) -> bool {
        self.offered == self.delivered + self.in_flight + self.drops
    }
}

/// One scheduled service-interruption window: the UE detaches from
/// `source` at `detach` and data resumes on `target` at `resume`.
#[derive(Debug, Clone, Copy)]
struct Window {
    detach: Instant,
    resume: Instant,
    source: usize,
    target: usize,
    /// Typed attribution for packets caught in the window (`None` for a
    /// fault-free handover: the detour is mobility baseline, not a fault).
    kind: Option<FaultKind>,
    /// The first forwarding flush is lost and replayed.
    fwd_lost: bool,
    /// Whether the window ends with a completed handover (vs recovery).
    via_handover: bool,
}

struct MobilitySim<'a> {
    cfg: &'a MobilityConfig,
    tel: Telemetry,
    prof: Profiler,
    inj: FaultInjector,
    gnb: [PdcpEntity; 2],
    ue: PdcpEntity,
    upf: Upf,
    ho: HandoverEntity,
    rrc: RrcEntity,
    serving: usize,
    windows: VecDeque<Window>,
    /// Packets caught in the front window: (payload index, send instant).
    held: Vec<(u64, Instant)>,
    delivery_delay: Duration,
    next_expected: u64,
    executions: u64,
    completed: u64,
    fwd_losses: u64,
    /// Monotone id for resolved interruption windows — the flight
    /// recorder's "ping" id for handover-failure exemplars.
    flushed: u64,
    offered: u64,
    delivered: u64,
    out_of_order: u64,
    latency: LatencyRecorder,
    interruption: LatencyRecorder,
    attribution: FaultAttribution,
}

impl MobilitySim<'_> {
    fn new<'a>(cfg: &'a MobilityConfig, tel: Option<&Telemetry>) -> MobilitySim<'a> {
        let tel = tel.cloned().unwrap_or_else(Telemetry::disabled);
        let master = SimRng::from_seed(cfg.stack.seed);
        let inj = FaultInjector::new(&cfg.stack.faults, &master);
        let key = cfg.stack.seed ^ 0xC0DE_CAFE;
        let mut gnb = [
            PdcpEntity::new(PdcpConfig::new(key, BEARER, Direction::Downlink)),
            PdcpEntity::new(PdcpConfig::new(key, BEARER, Direction::Downlink)),
        ];
        // The UE's receive entity deciphers the gNBs' downlink keystream.
        let ue = PdcpEntity::new(PdcpConfig::new(key, BEARER, Direction::Uplink));
        let mut upf = Upf::new();
        upf.set_telemetry(tel.clone());
        upf.establish_session(UE_ADDR, CELL_TEID[0]);
        let mut ho = HandoverEntity::new(cfg.stack.handover, cfg.stack.rach);
        ho.set_telemetry(tel.clone());
        let mut rrc = RrcEntity::new(cfg.stack.rrc, cfg.stack.rach);
        rrc.set_telemetry(tel.clone());
        for g in &mut gnb {
            g.set_telemetry(tel.clone());
        }
        // Deterministic base delivery delay of the fault-free data path:
        // scheduling lead + air time + N3 transport mean.
        let delivery_delay = cfg.stack.sched_lead
            + cfg.stack.data_air_time(cfg.stack.payload_bytes)
            + cfg.stack.backbone.mean();
        MobilitySim {
            cfg,
            tel,
            prof: Profiler::disabled(),
            inj,
            gnb,
            ue,
            upf,
            ho,
            rrc,
            serving: 0,
            windows: VecDeque::new(),
            held: Vec::new(),
            delivery_delay,
            next_expected: 0,
            executions: 0,
            completed: 0,
            fwd_losses: 0,
            flushed: 0,
            offered: 0,
            delivered: 0,
            out_of_order: 0,
            latency: LatencyRecorder::new(),
            interruption: LatencyRecorder::new(),
            attribution: FaultAttribution::default(),
        }
    }

    /// Flushes every window whose resume instant has passed.
    fn advance(&mut self, now: Instant) {
        while self.windows.front().is_some_and(|w| w.resume <= now) {
            self.flush_front();
        }
    }

    /// Resolves the front window: SN status transfer, Xn forwarding with
    /// real GTP-U bytes, end marker, UPF path switch, delivery of the
    /// held packets, and the serving-cell change.
    fn flush_front(&mut self) {
        // Infallibility note: every `expect` below sits on a loopback path —
        // the engine itself produced the bytes it is decoding (PDCP PDUs it
        // ciphered, G-PDUs its own tunnel framed, a session it registered at
        // construction). Malformed-peer handling lives in the entity layers
        // (`XnReceiver::accept`, `PdcpEntity::rx_decode` return typed
        // errors); a panic here means the engine corrupted its own state.
        let w = self.windows.pop_front().expect("flush_front requires a queued window");
        let status = SnStatusTransfer { dl_tx_next: self.gnb[w.source].tx_next_count() };
        let nothing_confirmed = PdcpStatusReport { fmc: 0, received: Vec::new() };
        let pdus = self.gnb[w.source].retransmit_unconfirmed(&nothing_confirmed);

        let teid = FWD_TEID + w.target as u32;
        let mut tunnel = XnForwardingTunnel::new(teid);
        let mut receiver = XnReceiver::new(teid);
        receiver.set_telemetry(self.tel.clone());
        if w.fwd_lost {
            // First flush lost in the tunnel: the batch crosses the wire
            // and vanishes; the source replays it (re-encoding with the
            // original COUNTs is byte-identical).
            for pdu in &pdus {
                let _lost = tunnel.forward(pdu).expect("PDCP PDU fits the Xn MTU");
            }
            self.fwd_losses += 1;
        }
        for pdu in &pdus {
            let wire = tunnel.forward(pdu).expect("PDCP PDU fits the Xn MTU");
            receiver.accept(&wire).expect("forwarded G-PDU is well-formed");
        }
        receiver.accept(&tunnel.end_marker()).expect("end marker is well-formed");
        debug_assert!(receiver.ended());

        self.gnb[w.target].set_tx_next(status.dl_tx_next);
        self.upf
            .rebind_session(UE_ADDR, CELL_TEID[w.target])
            .expect("the session outlives every handover");

        // Deliver the forwarded PDUs in COUNT order; they pair 1:1 with
        // the held packets in send order.
        let held = std::mem::take(&mut self.held);
        let held_len = held.len();
        let forwarded = receiver.drain();
        debug_assert_eq!(held_len, forwarded.len());
        for (pdu, (idx, sent_at)) in forwarded.iter().zip(held) {
            let sdus = self.ue.rx_decode(pdu).expect("forwarded PDU deciphers");
            let d = w.resume - sent_at;
            let mut trace = PingFaultTrace::new();
            if let Some(kind) = w.kind {
                trace.record(kind, d.saturating_sub(self.delivery_delay));
            }
            if w.fwd_lost {
                trace.record(FaultKind::HoForwardingLoss, self.ho.config().xn_delay * 2);
            }
            for sdu in sdus {
                self.account_delivery(&sdu, idx, d, trace.dominant());
            }
        }
        self.gnb[w.source].confirm_up_to(self.gnb[w.source].tx_next_count());

        let interruption = w.resume - w.detach;
        self.interruption.record(interruption);
        self.flushed += 1;
        if self.tel.is_enabled() && (w.kind.is_some() || w.fwd_lost) {
            // Handover failure: a forced flight-recorder exemplar keeps
            // the window's full evidence even when its interruption is
            // shorter than the worst-K data-path tails.
            let label = w.kind.unwrap_or(FaultKind::HoForwardingLoss).label();
            let mut fault_extra = Vec::new();
            if let Some(kind) = w.kind {
                fault_extra.push((kind.label(), interruption));
            }
            if w.fwd_lost {
                fault_extra
                    .push((FaultKind::HoForwardingLoss.label(), self.ho.config().xn_delay * 2));
            }
            let exemplar = TailExemplar {
                ping: self.flushed - 1,
                rtt: interruption,
                outcome: if interruption > self.cfg.stack.deadline {
                    ExemplarOutcome::Late
                } else {
                    ExemplarOutcome::OnTime
                },
                fault: Some(label),
                fault_extra,
                drop_reason: None,
                max_queue_depth: held_len,
                sched_rounds: 0,
                spans: vec![ExemplarSpan { label, dl: true, start: w.detach, end: w.resume }],
            };
            self.tel.flight_record(exemplar, true);
        }
        if w.via_handover {
            self.completed += 1;
            self.ho.record_complete(interruption);
        }
        self.serving = w.target;
        self.tel.journal(JournalEvent::Handover {
            from: w.source as u8,
            to: w.target as u8,
            label: "complete",
            at: w.resume,
        });
        if self.windows.is_empty() {
            self.ho.rearm();
        }
    }

    /// One delivered SDU: order check, latency, attribution.
    fn account_delivery(&mut self, sdu: &Bytes, idx: u64, d: Duration, dom: Option<FaultKind>) {
        // Infallible: every SDU reaching this point was built by `send_dl`
        // with an 8-byte big-endian index prefix, and PDCP delivers SDUs
        // whole — a short slice here would mean the stack truncated one.
        let decoded = u64::from_be_bytes(sdu[..8].try_into().expect("payload carries its index"));
        debug_assert_eq!(decoded, idx);
        if decoded != self.next_expected {
            self.out_of_order += 1;
        }
        self.next_expected = decoded + 1;
        self.delivered += 1;
        self.latency.record(d);
        self.attribution.record_delivered(d <= self.cfg.stack.deadline, dom);
    }

    /// One measurement occasion: feed the A3 tracker; on fire, build the
    /// interruption window (drawing the failure taxonomy).
    fn on_meas(&mut self, now: Instant) {
        self.advance(now);
        if !self.windows.is_empty() {
            // Mid-handover: the UE reports nothing until reconfigured.
            return;
        }
        let neighbour = 1 - self.serving;
        let s = self.cfg.trajectory.rsrp_dbm(self.serving, now);
        let n = self.cfg.trajectory.rsrp_dbm(neighbour, now);
        if !self.ho.observe(now, s, n) {
            return;
        }
        self.executions += 1;
        let hocfg = *self.ho.config();
        let xn_rt = hocfg.xn_delay * 2;
        self.tel.journal(JournalEvent::Handover {
            from: self.serving as u8,
            to: neighbour as u8,
            label: "trigger",
            at: now,
        });

        if self.inj.ho_too_late() {
            // The serving link dies before the HO command arrives: RLF,
            // re-establishment into the target, Xn context fetch.
            self.ho.record_too_late();
            self.rrc.reset_budget();
            let (recovery, rng) = (&mut self.rrc, self.inj.recovery_rng());
            let rec = recovery.recover(now, rng).expect("budget was just reset");
            let resume = now + rec.total() + xn_rt;
            self.tel.journal(JournalEvent::Handover {
                from: self.serving as u8,
                to: neighbour as u8,
                label: "too-late",
                at: now,
            });
            self.windows.push_back(Window {
                detach: now,
                resume,
                source: self.serving,
                target: neighbour,
                kind: Some(FaultKind::HoTooLate),
                fwd_lost: false,
                via_handover: false,
            });
            return;
        }

        let timeline = self.ho.execute(now);
        let detach = now + timeline.command_delay();
        if self.inj.ho_too_early() {
            // Target access fails until T304 expires, then the UE
            // re-establishes (into the stronger target).
            self.ho.record_too_early();
            self.rrc.reset_budget();
            let failed_at = detach + timeline.reconfig + hocfg.t304;
            let (recovery, rng) = (&mut self.rrc, self.inj.recovery_rng());
            let rec = recovery.recover(failed_at, rng).expect("budget was just reset");
            let resume = failed_at + rec.total() + xn_rt;
            self.tel.journal(JournalEvent::Handover {
                from: self.serving as u8,
                to: neighbour as u8,
                label: "too-early",
                at: detach,
            });
            self.windows.push_back(Window {
                detach,
                resume,
                source: self.serving,
                target: neighbour,
                kind: Some(FaultKind::HoTooEarly),
                fwd_lost: false,
                via_handover: false,
            });
            return;
        }

        let fwd_lost = self.inj.ho_forwarding_lost();
        let resume = detach
            + timeline.interruption()
            + xn_rt
            + if fwd_lost { xn_rt } else { Duration::ZERO };
        self.windows.push_back(Window {
            detach,
            resume,
            source: self.serving,
            target: neighbour,
            kind: None,
            fwd_lost,
            via_handover: true,
        });

        // Ping-pong chain: each completed handover may bounce straight
        // back (a geometric chain under the injected probability).
        let (mut src, mut tgt, mut report_at) = (neighbour, self.serving, resume);
        let mut bounces = 0;
        while bounces < MAX_BOUNCES && self.inj.ho_ping_pong() {
            bounces += 1;
            self.ho.record_ping_pong();
            self.executions += 1;
            let tl = self.ho.execute(report_at);
            let det = report_at + tl.command_delay();
            let lost = self.inj.ho_forwarding_lost();
            let res = det + tl.interruption() + xn_rt + if lost { xn_rt } else { Duration::ZERO };
            self.tel.journal(JournalEvent::Handover {
                from: src as u8,
                to: tgt as u8,
                label: "ping-pong",
                at: report_at,
            });
            self.windows.push_back(Window {
                detach: det,
                resume: res,
                source: src,
                target: tgt,
                kind: Some(FaultKind::HoPingPong),
                fwd_lost: lost,
                via_handover: true,
            });
            std::mem::swap(&mut src, &mut tgt);
            report_at = res;
        }
    }

    /// One downlink packet: UPF encapsulation, serving-gNB PDCP, and
    /// either immediate delivery or capture by the open window.
    fn on_packet(&mut self, idx: u64, now: Instant) {
        self.advance(now);
        self.offered += 1;
        let payload = Bytes::copy_from_slice(&idx.to_be_bytes());
        // Infallible (loopback invariants, as in `flush_front`): the UPF
        // session for UE_ADDR is registered at engine construction and the
        // G-PDU being decoded was framed by that same UPF one line up.
        let n3 = self.upf.downlink(UE_ADDR, &payload).expect("the session is established");
        // The serving gNB terminates the N3 tunnel the UPF points at.
        let (_, sdu) = GtpuHeader::decode(&n3).expect("UPF-encapsulated G-PDU is well-formed");
        let count = self.gnb[self.serving].tx_next_count();
        let pdu = self.gnb[self.serving].tx_encode(&sdu);

        if self.windows.front().is_some_and(|w| now >= w.detach) {
            // Caught in the interruption: stays in the source's
            // retransmission buffer until the forwarding flush.
            self.held.push((idx, now));
            return;
        }
        let sdus = self.ue.rx_decode(&pdu).expect("fresh PDU deciphers");
        self.gnb[self.serving].confirm_up_to(count + 1);
        let d = self.delivery_delay;
        for sdu in sdus {
            self.account_delivery(&sdu, idx, d, None);
        }
    }

    fn run(mut self) -> MobilityReport {
        // Clone the handle so the scope guard's borrow doesn't pin `self`.
        let prof = self.prof.clone();
        let mut pkt = 0u64;
        let mut meas = 0u64;
        while pkt < self.cfg.n_packets {
            let t_pkt = Instant::ZERO + self.cfg.packet_interval * pkt;
            let t_meas = Instant::ZERO + self.cfg.meas_period * meas;
            if t_meas <= t_pkt {
                let _t = prof.scope("handover/meas");
                self.on_meas(t_meas);
                meas += 1;
            } else {
                let _t = prof.scope("handover/packet");
                self.on_packet(pkt, t_pkt);
                pkt += 1;
            }
        }
        // Final drain: resolve every outstanding window so nothing stays
        // in flight.
        while !self.windows.is_empty() {
            let _t = prof.scope("handover/flush");
            self.flush_front();
        }
        let in_flight =
            (self.gnb[0].tx_pending() + self.gnb[1].tx_pending() + self.ue.buffered()) as u64;
        MobilityReport {
            offered: self.offered,
            delivered: self.delivered,
            in_flight,
            drops: self.ue.discarded(),
            out_of_order: self.out_of_order,
            handovers: self.executions,
            completed: self.completed,
            too_late: self.ho.too_late(),
            too_early: self.ho.too_early(),
            ping_pongs: self.ho.ping_pongs(),
            forwarding_losses: self.fwd_losses,
            interruption: self.interruption,
            latency: self.latency,
            attribution: self.attribution,
            tally: *self.inj.tally(),
        }
    }
}

/// Runs one mobility experiment: the CBR downlink stream across the
/// shuttling UE's handovers, under the configured fault plan.
pub fn run_mobility(cfg: &MobilityConfig, tel: Option<&Telemetry>) -> MobilityReport {
    MobilitySim::new(cfg, tel).run()
}

/// [`run_mobility`] with a host wall-time [`Profiler`] wrapped around each
/// engine event class (`handover/meas`, `handover/packet`,
/// `handover/flush`). The profiler reads only the host clock; the report
/// is bit-identical with or without it.
pub fn run_mobility_profiled(
    cfg: &MobilityConfig,
    tel: Option<&Telemetry>,
    prof: &Profiler,
) -> MobilityReport {
    let mut sim = MobilitySim::new(cfg, tel);
    sim.prof = prof.clone();
    sim.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ran::AccessMode;

    fn base(speed: f64, legs: u32) -> MobilityConfig {
        MobilityConfig::for_speed(
            StackConfig::testbed_dddu(AccessMode::GrantBased, true),
            speed,
            legs,
        )
    }

    #[test]
    fn trajectory_shuttles_and_rsrp_crosses() {
        let t = SignalTrajectory::intercell(30.0);
        assert_eq!(t.position_m(Instant::ZERO), 20.0);
        let half_leg = Instant::ZERO + t.leg_duration() / 2;
        let mid = t.position_m(half_leg);
        assert!((mid - 100.0).abs() < 1.0, "midpoint {mid}");
        // Near cell 0 it wins; near cell 1 the neighbour wins.
        assert!(t.rsrp_dbm(0, Instant::ZERO) > t.rsrp_dbm(1, Instant::ZERO));
        let at_far = Instant::ZERO + t.leg_duration();
        assert!(t.rsrp_dbm(1, at_far) > t.rsrp_dbm(0, at_far));
    }

    #[test]
    fn fault_free_mobility_is_lossless_and_in_order() {
        let report = run_mobility(&base(30.0, 2), None);
        assert!(report.handovers >= 2, "two legs give two handovers, got {}", report.handovers);
        assert_eq!(report.handovers, report.completed);
        assert!(report.conserved(), "offered {} delivered {}", report.offered, report.delivered);
        assert_eq!(report.in_flight, 0);
        assert_eq!(report.drops, 0);
        assert_eq!(report.out_of_order, 0);
        assert_eq!(report.too_late + report.too_early + report.ping_pongs, 0);
        assert!(report.attribution.is_fault_free());
        assert_eq!(report.interruption.count(), report.completed);
    }

    #[test]
    fn chaos_plan_recovers_every_failure_mode() {
        let mut seen = (0u64, 0u64, 0u64, 0u64);
        for seed in 0..6u64 {
            let mut cfg = base(60.0, 4);
            cfg.stack = cfg.stack.with_seed(seed).with_faults(sim::FaultPlan::handover_chaos(1.0));
            let report = run_mobility(&cfg, None);
            assert!(report.conserved(), "seed {seed}");
            assert_eq!(report.in_flight, 0, "seed {seed}");
            assert_eq!(report.drops, 0, "seed {seed}");
            assert_eq!(report.out_of_order, 0, "seed {seed}");
            assert_eq!(report.too_late, report.tally.get(FaultKind::HoTooLate));
            assert_eq!(report.too_early, report.tally.get(FaultKind::HoTooEarly));
            assert_eq!(report.ping_pongs, report.tally.get(FaultKind::HoPingPong));
            seen.0 += report.too_late;
            seen.1 += report.too_early;
            seen.2 += report.ping_pongs;
            seen.3 += report.forwarding_losses;
        }
        assert!(seen.0 > 0, "no too-late seen");
        assert!(seen.1 > 0, "no too-early seen");
        assert!(seen.2 > 0, "no ping-pong seen");
        assert!(seen.3 > 0, "no forwarding loss seen");
    }

    #[test]
    fn runs_are_deterministic() {
        let mut cfg = base(30.0, 2);
        cfg.stack = cfg.stack.with_faults(sim::FaultPlan::handover_chaos(0.5));
        let mut a = run_mobility(&cfg, None);
        let mut b = run_mobility(&cfg, None);
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.handovers, b.handovers);
        assert_eq!(a.latency.samples_us(), b.latency.samples_us());
        assert_eq!(a.interruption.summary(), b.interruption.summary());
        assert_eq!(a.attribution, b.attribution);
    }

    #[test]
    fn faulted_packets_carry_typed_attribution() {
        let mut cfg = base(60.0, 4);
        cfg.stack = cfg.stack.with_seed(3).with_faults(sim::FaultPlan::handover_chaos(1.0));
        let report = run_mobility(&cfg, None);
        let attributed = report.attribution.late_by.total() + report.attribution.lost_by.total();
        assert!(report.tally.total() > 0, "chaos plan injected nothing");
        assert!(
            attributed > 0 || report.attribution.late == report.attribution.late_baseline,
            "faulted deliveries lost their attribution"
        );
    }

    #[test]
    fn journal_records_handover_transitions() {
        let tel = Telemetry::new(4096);
        let _ = run_mobility(&base(30.0, 2), Some(&tel));
        let events = tel.journal_events();
        let hos: Vec<&JournalEvent> =
            events.iter().filter(|e| matches!(e, JournalEvent::Handover { .. })).collect();
        assert!(hos.len() >= 4, "expected trigger+complete per leg, got {}", hos.len());
    }
}
