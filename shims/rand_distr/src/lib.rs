#![allow(clippy::all)]
//! Offline stand-in for the `rand_distr` crate (0.4 API subset).
//!
//! Implements the exact samplers this workspace consumes — [`Exp`],
//! [`Normal`], [`LogNormal`], [`Gamma`] — with textbook-exact algorithms
//! (inverse CDF, Box–Muller, Marsaglia–Tsang), so calibration tests that
//! assert sampled mean/std against closed forms hold to the same
//! tolerances as with the upstream crate.

#![forbid(unsafe_code)]

use std::fmt;

use rand::RngCore;

/// Types which can be sampled, parameterised by the output type.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform draw in `[0, 1)` with 53 bits of precision.
fn uniform01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw in `(0, 1]` — safe as a logarithm argument.
fn uniform01_open_low<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    1.0 - uniform01(rng)
}

/// Standard normal via Box–Muller (one of the two antithetic outputs).
fn normal01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1 = uniform01_open_low(rng);
    let u2 = uniform01(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Error constructing an exponential distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpError {
    /// `lambda` was not a finite positive number.
    LambdaTooSmall,
}

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("lambda must be finite and positive")
    }
}

impl std::error::Error for ExpError {}

/// The exponential distribution `Exp(lambda)` with mean `1/lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates an exponential distribution with rate `lambda`.
    pub fn new(lambda: f64) -> Result<Exp, ExpError> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Exp { lambda })
        } else {
            Err(ExpError::LambdaTooSmall)
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -uniform01_open_low(rng).ln() / self.lambda
    }
}

/// Error constructing a normal or log-normal distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or non-finite.
    BadVariance,
    /// The mean was non-finite.
    MeanTooSmall,
}

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("normal parameters must be finite with std >= 0")
    }
}

impl std::error::Error for NormalError {}

/// The normal distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    pub fn new(mean: f64, std: f64) -> Result<Normal, NormalError> {
        if !mean.is_finite() {
            Err(NormalError::MeanTooSmall)
        } else if !std.is_finite() || std < 0.0 {
            Err(NormalError::BadVariance)
        } else {
            Ok(Normal { mean, std })
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std * normal01(rng)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution from the *log-scale* location
    /// `mu` and shape `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, NormalError> {
        Ok(LogNormal { norm: Normal::new(mu, sigma)? })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Error constructing a gamma distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GammaError {
    /// `shape` was not a finite positive number.
    ShapeTooSmall,
    /// `scale` was not a finite positive number.
    ScaleTooSmall,
}

impl fmt::Display for GammaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("gamma shape and scale must be finite and positive")
    }
}

impl std::error::Error for GammaError {}

/// The gamma distribution with the given shape `k` and scale `theta`
/// (mean `k·theta`, variance `k·theta²`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution with the given shape and scale.
    pub fn new(shape: f64, scale: f64) -> Result<Gamma, GammaError> {
        if !(shape.is_finite() && shape > 0.0) {
            Err(GammaError::ShapeTooSmall)
        } else if !(scale.is_finite() && scale > 0.0) {
            Err(GammaError::ScaleTooSmall)
        } else {
            Ok(Gamma { shape, scale })
        }
    }

    /// Marsaglia–Tsang squeeze for shape >= 1; exact rejection sampler.
    fn sample_shape_ge_1<R: RngCore + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (3.0 * d.sqrt());
        loop {
            let x = normal01(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = uniform01_open_low(rng);
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Distribution<f64> for Gamma {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let unit = if self.shape >= 1.0 {
            Gamma::sample_shape_ge_1(self.shape, rng)
        } else {
            // Boost for shape < 1: Gamma(k) = Gamma(k+1) · U^(1/k).
            let g = Gamma::sample_shape_ge_1(self.shape + 1.0, rng);
            g * uniform01_open_low(rng).powf(1.0 / self.shape)
        };
        unit * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stats(samples: impl Iterator<Item = f64>) -> (f64, f64, usize) {
        let (mut n, mut mean, mut m2) = (0usize, 0.0, 0.0);
        for x in samples {
            n += 1;
            let d = x - mean;
            mean += d / n as f64;
            m2 += d * (x - mean);
        }
        (mean, (m2 / (n - 1) as f64).sqrt(), n)
    }

    #[test]
    fn exponential_matches_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let e = Exp::new(0.25).unwrap();
        let (mean, _, _) = stats((0..100_000).map(|_| e.sample(&mut rng)));
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_matches_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Normal::new(3.0, 2.0).unwrap();
        let (mean, std, _) = stats((0..200_000).map(|_| d.sample(&mut rng)));
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((std - 2.0).abs() < 0.02, "std {std}");
    }

    #[test]
    fn lognormal_matches_closed_form() {
        let (mu, sigma) = (1.0, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let d = LogNormal::new(mu, sigma).unwrap();
        let (mean, _, _) = stats((0..200_000).map(|_| d.sample(&mut rng)));
        let expect = (mu + sigma * sigma / 2.0_f64).exp();
        assert!((mean - expect).abs() < 0.02 * expect, "mean {mean} vs {expect}");
    }

    #[test]
    fn gamma_matches_moments_both_branches() {
        let mut rng = StdRng::seed_from_u64(4);
        for (shape, scale) in [(4.0, 2.5), (0.5, 3.0)] {
            let d = Gamma::new(shape, scale).unwrap();
            let (mean, std, _) = stats((0..200_000).map(|_| d.sample(&mut rng)));
            let (em, es) = (shape * scale, shape.sqrt() * scale);
            assert!((mean - em).abs() < 0.03 * em, "shape {shape}: mean {mean} vs {em}");
            assert!((std - es).abs() < 0.05 * es, "shape {shape}: std {std} vs {es}");
        }
    }

    #[test]
    fn invalid_params_are_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
    }
}
