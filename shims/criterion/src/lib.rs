#![allow(clippy::all)]
//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Keeps every `#[bench]`-style target in `crates/bench/benches/*`
//! compiling and runnable without registry access. Measurement is a
//! simple timed loop (median-free): good enough to compare orders of
//! magnitude and to keep `cargo bench` wired into CI, without upstream's
//! statistical machinery.
//!
//! Mode selection follows upstream: when cargo invokes a
//! `harness = false` bench target from `cargo test --benches` it passes
//! `--test`, and each benchmark body runs exactly once as a smoke test;
//! under `cargo bench` (which passes `--bench`) the timed loop runs.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement iterations per benchmark in full (non-smoke) mode.
const DEFAULT_ITERS: u64 = 20;

fn smoke_mode() -> bool {
    // Full measurement only when explicitly invoked as a benchmark.
    !std::env::args().any(|a| a == "--bench")
}

/// The benchmark manager: registers and runs benchmark functions.
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { smoke: smoke_mode() }
    }
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id.into(), self.smoke, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), smoke: self.smoke, _parent: self }
    }

    /// Upstream parses CLI filters here; the stand-in only needs the
    /// mode flag, which [`Criterion::default`] already read.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Prints the closing summary (no-op).
    pub fn final_summary(&self) {}
}

/// A named collection of benchmarks sharing throughput/size settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    smoke: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (accepted, unused).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measured throughput unit (accepted, unused).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into(), self.smoke, f);
        self
    }

    /// Runs a parameterised benchmark within this group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.into(), self.smoke, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterised.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Declared throughput of the benchmarked routine.
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`].
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Times the benchmark routine.
pub struct Bencher {
    smoke: bool,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let iters = if self.smoke { 1 } else { DEFAULT_ITERS };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Times `routine` with a fresh un-timed `setup` product per call.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let iters = if self.smoke { 1 } else { DEFAULT_ITERS };
        let mut elapsed = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
        self.iters = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: Option<&str>, id: &BenchmarkId, smoke: bool, mut f: F) {
    let mut b = Bencher { smoke, iters: 0, elapsed: Duration::ZERO };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    if smoke {
        println!("bench {label}: ok (smoke)");
    } else if b.iters > 0 {
        let per_iter = b.elapsed.as_nanos() / b.iters as u128;
        println!("bench {label}: {per_iter} ns/iter ({} iters)", b.iters);
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u32;
        let mut c = Criterion { smoke: true };
        c.bench_function("unit", |b| b.iter(|| calls += 1));
        assert!(calls >= 1);
    }

    #[test]
    fn groups_and_inputs_plumb_through() {
        let mut c = Criterion { smoke: true };
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Bytes(64));
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::new("id", 64), &7u64, |b, &x| b.iter(|| seen = x));
        g.bench_function("batched", |b| b.iter_batched(|| 3u64, |x| x * 2, BatchSize::SmallInput));
        g.finish();
        assert_eq!(seen, 7);
    }
}
