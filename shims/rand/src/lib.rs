#![allow(clippy::all)]
//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation of exactly the surface
//! it consumes: [`RngCore`], [`SeedableRng::seed_from_u64`], [`Rng::gen`]
//! for `u64`/`f64`, and [`rngs::StdRng`]. The generator is xoshiro256**
//! seeded through SplitMix64 — not bit-compatible with upstream `StdRng`
//! (ChaCha12), but every consumer in this workspace only relies on
//! determinism and statistical quality, both of which hold.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type for fallible RNG operations. The shim generators are
/// infallible, so this is never constructed outside of user code.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw 32/64-bit output and byte
/// filling.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure as an [`Error`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose state is derived from `state` via
    /// SplitMix64 (matching upstream's documented seeding strategy).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`] — the shim's
/// counterpart of sampling from upstream's `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_from_u64 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_from_u64!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits => uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from the type's full range (integers) or
    /// from `[0, 1)` (floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard generator: xoshiro256** (Blackman &
    /// Vigna), a small, fast, high-quality PRNG that passes BigCrush.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_per_seed() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
            let mut c = StdRng::seed_from_u64(43);
            assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
        }

        #[test]
        fn f64_uniform_in_unit_interval() {
            let mut r = StdRng::seed_from_u64(7);
            let mut sum = 0.0;
            for _ in 0..100_000 {
                let x: f64 = r.gen();
                assert!((0.0..1.0).contains(&x));
                sum += x;
            }
            let mean = sum / 100_000.0;
            assert!((mean - 0.5).abs() < 5e-3, "mean {mean}");
        }

        #[test]
        fn fill_bytes_covers_partial_chunks() {
            let mut r = StdRng::seed_from_u64(1);
            let mut buf = [0u8; 13];
            r.fill_bytes(&mut buf);
            assert!(buf.iter().any(|&b| b != 0));
        }
    }
}
