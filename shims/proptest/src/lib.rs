#![allow(clippy::all)]
//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro over `arg in strategy` bindings, `prop_assert*!`,
//! `any::<T>()`, integer/float range strategies, tuple strategies, and the
//! `prop::{collection, option, sample}` helpers. Each test runs a fixed
//! number of random cases (`PROPTEST_CASES` env var, default 64) from a
//! seed derived deterministically from the test name, so failures are
//! reproducible run-to-run. No shrinking: the failing case's values are
//! printed instead.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait: a recipe for generating random values.

    use crate::test_runner::TestRunner;

    /// A source of random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;
        /// Generates one value.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Maps generated values through `f` (upstream's `prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.inner.generate(runner))
        }
    }

    /// Always generates a clone of the given value (upstream's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (runner.next() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    let off = (runner.next() as u128) % span;
                    (lo + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, runner: &mut TestRunner) -> f64 {
            self.start + runner.uniform() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, runner: &mut TestRunner) -> f32 {
            self.start + (runner.uniform() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident : $idx:tt),+);)*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.generate(runner),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0);
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
        (A: 0, B: 1, C: 2, D: 3, E: 4);
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.next() as $t
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, runner: &mut TestRunner) -> bool {
            runner.next() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, runner: &mut TestRunner) -> f64 {
            runner.uniform()
        }
    }

    impl Strategy for Any<crate::sample::Index> {
        type Value = crate::sample::Index;
        fn generate(&self, runner: &mut TestRunner) -> crate::sample::Index {
            crate::sample::Index::new(runner.next() as usize)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical strategy for a type.

    use crate::strategy::Any;

    /// Returns the canonical strategy for `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy,
    {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_set`.

    use std::collections::BTreeSet;
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Strategy for `Vec<T>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = self.size.generate(runner);
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with up to `size` elements (duplicates
    /// collapse, as with upstream's minimum-size-0 usage).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates ordered sets whose elements come from `element`.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> BTreeSet<S::Value> {
            let n = self.size.generate(runner);
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }
}

pub mod option {
    //! `option::of` — optional values.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Strategy for `Option<T>`; `None` with probability one half.
    pub struct OptionStrategy<S>(S);

    /// Generates `Some` of the inner strategy half the time.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Option<S::Value> {
            if runner.next() & 1 == 0 {
                None
            } else {
                Some(self.0.generate(runner))
            }
        }
    }
}

pub mod sample {
    //! Sampling helpers: [`Index`].

    /// An index into a collection of as-yet-unknown size.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        pub(crate) fn new(raw: usize) -> Index {
            Index(raw)
        }

        /// Resolves the index against a collection of length `len`.
        ///
        /// # Panics
        /// Panics if `len` is zero, matching upstream.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }
}

pub mod test_runner {
    //! Deterministic case generation and failure plumbing.

    /// Drives value generation for one property test.
    pub struct TestRunner {
        state: u64,
    }

    impl TestRunner {
        /// Creates a runner seeded deterministically from a test name.
        pub fn deterministic(name: &str) -> TestRunner {
            // FNV-1a over the name; any fixed mapping works.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner { state: h }
        }

        /// Next raw 64-bit value (SplitMix64).
        pub fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn uniform(&mut self) -> f64 {
            (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A failed property within one generated case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }

        /// The failure message.
        pub fn message(&self) -> &str {
            &self.0
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-test configuration (subset: case count).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
            Config { cases }
        }
    }
}

pub mod prelude {
    //! Everything a property-test module needs in scope.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` module hierarchy (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Asserts a condition inside a `proptest!` body, failing the current
/// case (with the generated inputs printed) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two values compare equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

/// Asserts two values compare unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), l
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, $($fmt)*);
            }
        }
    };
}

/// Declares property tests: each `fn` runs its body against many
/// generated cases of its `arg in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut runner =
                    $crate::test_runner::TestRunner::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut runner);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -1.0f32..1.0, z in 0u8..2) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
            prop_assert!(z < 2);
        }

        #[test]
        fn collections_respect_size(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn index_resolves(i in any::<prop::sample::Index>()) {
            prop_assert!(i.index(7) < 7);
        }

        #[test]
        fn options_both_arms(o in prop::option::of(any::<u16>())) {
            match o {
                Some(_) | None => {}
            }
        }

        #[test]
        fn just_and_prop_map_compose(
            pair in (Just(7u8), (0u32..5).prop_map(|x| x * 2)),
            five in (0u8..2, Just(1u8), 0u8..2, Just(3u8), 0u8..2),
        ) {
            prop_assert_eq!(pair.0, 7);
            prop_assert!(pair.1 % 2 == 0 && pair.1 < 10);
            prop_assert_eq!((five.1, five.3), (1, 3));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_override_runs(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn prop_assert_short_circuits_to_err() {
        let check = |x: u8| -> Result<(), crate::test_runner::TestCaseError> {
            prop_assert!(x > 200, "x was {x}");
            Ok(())
        };
        assert!(check(5).is_err());
        assert!(check(201).is_ok());
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = || {
            let mut r = crate::test_runner::TestRunner::deterministic("t");
            (0..8).map(|_| r.next()).collect::<Vec<_>>()
        };
        assert_eq!(gen(), gen());
    }
}
