#![allow(clippy::all)]
//! Offline stand-in for the `serde` crate.
//!
//! The workspace decorates config structs with `#[derive(Serialize,
//! Deserialize)]` to keep them serialisation-ready, but never invokes a
//! serialiser (reports are written via the bench crate's own CSV writer).
//! With no registry access at build time, this stand-in supplies the two
//! trait names as blanket-implemented markers plus no-op derives, keeping
//! every annotation in the tree compiling unchanged.

#![forbid(unsafe_code)]

/// Marker for types that are serialisation-ready. Blanket-implemented:
/// every type qualifies, since nothing in the workspace serialises.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types that are deserialisation-ready. Blanket-implemented.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
