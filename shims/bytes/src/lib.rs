#![allow(clippy::all)]
//! Offline stand-in for the `bytes` crate: a cheaply cloneable,
//! sliceable, immutable byte buffer.
//!
//! Matches the upstream `Bytes` semantics the workspace relies on —
//! shared ownership via `Arc`, zero-copy `slice`, deref to `[u8]` — for
//! the PDU payloads threaded through the RLC/PDCP/MAC codecs.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, Index, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of shared bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    /// Creates a buffer from a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from_vec(bytes.to_vec())
    }

    /// Creates a buffer that copies `data` exactly once; clones and
    /// slices share it from then on.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: Arc::from(v), start: 0, end }
    }

    /// Number of bytes in view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view without copying the underlying storage.
    ///
    /// # Panics
    /// Panics if the range is out of bounds, matching upstream.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of range for {}", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Bytes {
        Bytes::from_static(b)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(b: &'static [u8; N]) -> Bytes {
        Bytes::from_static(b)
    }
}

impl<I: std::slice::SliceIndex<[u8]>> Index<I> for Bytes {
    type Output = I::Output;
    fn index(&self, i: I) -> &I::Output {
        &self.as_slice()[i]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    /// Upstream prints `b"..."`-style escapes; keep that for readable
    /// test failures.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                0x20..=0x7E => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage_and_bounds_check() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let tail = s.slice(2..);
        assert_eq!(&tail[..], &[4]);
        assert_eq!(b.slice(..), b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slice_panics() {
        Bytes::from(vec![1u8]).slice(0..5);
    }

    #[test]
    fn equality_and_debug() {
        let a = Bytes::from_static(b"ab\"\x01");
        assert_eq!(a, Bytes::from(vec![b'a', b'b', b'"', 1]));
        assert_eq!(format!("{a:?}"), "b\"ab\\\"\\x01\"");
    }
}
