#![allow(clippy::all)]
//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` backing the
//! offline `serde` stand-in. The workspace uses the derives purely as
//! decoration (no `#[serde(...)]` attributes, no serialisation calls), and
//! the stand-in blanket-implements the marker traits, so the derives have
//! nothing to generate.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
